// Package membership is a SWIM-style gossip membership service for the live
// TerraDir overlay: periodic randomized probing with indirect probes through
// helpers, a suspect→dead state machine guarded by incarnation numbers, and
// membership deltas piggybacked on every protocol message with a logarithmic
// retransmit budget. It is transport-agnostic — the driver supplies send
// functions — and deliberately knows nothing about namespaces; the overlay
// couples its events to the OwnershipTable for handoff.
//
// The design follows Das et al.'s SWIM (2002): failure detection and
// dissemination are separated, detection load is O(1) per member per probe
// period, and false suspicion is refuted by the accused member bumping its
// incarnation. Dead members are reprobed at a low rate so a healed partition
// (or a restarted process) resurrects without operator action.
package membership

import (
	"fmt"
	"math/bits"
	"sort"
	"sync"
	"time"

	"terradir/internal/core"
	"terradir/internal/rng"
	"terradir/internal/telemetry"
)

// State is a member's lifecycle state. The zero value is Alive.
type State uint8

const (
	Alive State = iota
	Suspect
	Dead
)

func (s State) String() string {
	switch s {
	case Alive:
		return "alive"
	case Suspect:
		return "suspect"
	case Dead:
		return "dead"
	}
	return "unknown"
}

// Member is one row of the membership table.
type Member struct {
	ID          core.ServerID
	State       State
	Incarnation uint64
	Addr        string
	// HasState reports that the member advertised durable local state when it
	// (re)joined — it can restore hosted entries by local replay, so peers
	// should skip the full warmup push and wait for its delta reconcile.
	HasState bool
}

// Event reports a member's state transition. Events are delivered in order
// through Config.OnEvent, one at a time.
type Event struct {
	Member
	// Prev is the state the member transitioned from.
	Prev State
	// Joined marks the first time this service heard of the member at all —
	// a join handshake or a gossip update naming an unknown server.
	Joined bool
}

// Options tunes the failure detector. Zero fields take the documented
// defaults.
type Options struct {
	// ProbeInterval is the protocol period: one direct probe per tick.
	// Default 250ms.
	ProbeInterval time.Duration
	// ProbeTimeout bounds the wait for a direct ack before indirect probing.
	// Default ProbeInterval/3.
	ProbeTimeout time.Duration
	// IndirectProbes is the number of helpers asked to probe an unresponsive
	// member (SWIM's k). Default 2.
	IndirectProbes int
	// SuspicionTimeout is how long a suspect has to refute before being
	// declared dead. Default 4×ProbeInterval.
	SuspicionTimeout time.Duration
	// MaxUpdatesPerMessage bounds the piggybacked delta count. Default 8.
	MaxUpdatesPerMessage int
	// RetransmitFactor scales each delta's retransmit budget:
	// RetransmitFactor × ⌈log₂(members+1)⌉ piggybacks. Default 3.
	RetransmitFactor int
	// DeadReprobeInterval is how often one dead member is probed anyway, so a
	// healed partition or restarted peer is rediscovered. Default
	// 8×ProbeInterval; negative disables.
	DeadReprobeInterval time.Duration
	// Seed seeds the deterministic probe-order RNG. Default 1.
	Seed uint64
}

func (o *Options) fill() {
	if o.ProbeInterval <= 0 {
		o.ProbeInterval = 250 * time.Millisecond
	}
	if o.ProbeTimeout <= 0 {
		o.ProbeTimeout = o.ProbeInterval / 3
	}
	if o.IndirectProbes <= 0 {
		o.IndirectProbes = 2
	}
	if o.SuspicionTimeout <= 0 {
		o.SuspicionTimeout = 4 * o.ProbeInterval
	}
	if o.MaxUpdatesPerMessage <= 0 {
		o.MaxUpdatesPerMessage = 8
	}
	if o.RetransmitFactor <= 0 {
		o.RetransmitFactor = 3
	}
	if o.DeadReprobeInterval == 0 {
		o.DeadReprobeInterval = 8 * o.ProbeInterval
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
}

// Config wires a Service to its driver.
type Config struct {
	// Self is this member's server ID.
	Self core.ServerID
	// SelfAddr is the address other members can dial this one on; it rides
	// every self-update so joiners' addresses disseminate by gossip.
	SelfAddr string
	// Peers seeds the member table with the statically known deployment
	// (addresses may be empty for transports that route by ID alone). Self is
	// ignored if present.
	Peers map[core.ServerID]string
	// JoinAddr, when set, bootstraps membership by sending a join handshake
	// to one live peer (retried every probe tick until acknowledged) instead
	// of requiring Peers. Requires SendAddr.
	JoinAddr string
	// Send transmits a membership message to a known member. Required.
	Send func(to core.ServerID, m *core.MembershipMsg)
	// SendAddr transmits to an explicit address before the destination's ID
	// is routable — the join bootstrap path. Optional.
	SendAddr func(addr string, m *core.MembershipMsg) error
	// OnEvent receives state transitions, serialized and in order. Optional.
	// It is called from service goroutines and must not block indefinitely.
	OnEvent func(Event)
	// OnAddr is told every newly learned (or changed) member address so the
	// transport can learn routes at runtime. Optional; must be fast and safe
	// to call from service goroutines.
	OnAddr func(id core.ServerID, addr string)
	// Registry receives the service's metrics (optional), labeled with
	// Labels.
	Registry *telemetry.Registry
	Labels   []string
	// Incarnation seeds this member's own incarnation number. A restarting
	// member passes its persisted incarnation plus one so its alive claim
	// strictly supersedes any Dead record the cluster still gossips about its
	// previous life (Alive only overrides strictly newer incarnations).
	Incarnation uint64
	// HasState marks this member's self-updates as backed by durable local
	// state: peers that see the flag suppress the full warmup push and let
	// the member pull only the delta it missed while down.
	HasState bool
	// OnIncarnation is told every self-incarnation bump (suspicion/death
	// refutations) so the new value can be persisted before it is gossiped
	// further. Optional; called under internal locks — must be fast and must
	// not call back into the Service.
	OnIncarnation func(inc uint64)

	Options
}

type memberEntry struct {
	Member
	// suspectInc is the incarnation the running suspicion timer was armed
	// for; a refutation bumps the incarnation and invalidates the timer.
	suspectInc uint64
}

type pendingProbe struct {
	target   core.ServerID
	indirect bool
}

type relayEntry struct {
	origin    core.ServerID
	originSeq uint64
	target    core.ServerID
}

type queuedUpdate struct {
	u    core.MemberUpdate
	left int // remaining piggyback transmissions
}

// Service runs the membership protocol. Create with New, then Start.
type Service struct {
	cfg Config

	mu          sync.Mutex
	members     map[core.ServerID]*memberEntry
	rotation    []core.ServerID
	rotIdx      int
	incarnation uint64
	seq         uint64
	pending     map[uint64]*pendingProbe
	relays      map[uint64]relayEntry
	updates     []*queuedUpdate
	eventQ      []Event
	joined      bool
	stopped     bool
	src         *rng.Source
	ticks       uint64
	deadEvery   uint64

	evMu sync.Mutex // serializes OnEvent delivery across goroutines

	stop chan struct{}
	done chan struct{}

	probesSent, acksReceived, pingReqs *telemetry.Counter
	suspicions, deaths, refutations    *telemetry.Counter
	resurrections, joinsHandled        *telemetry.Counter
}

// New builds a service. Call Start to begin probing; Deliver inbound
// membership messages from any goroutine.
func New(cfg Config) *Service {
	cfg.Options.fill()
	if cfg.Send == nil {
		panic("membership: Config.Send is required")
	}
	s := &Service{
		cfg:     cfg,
		members: make(map[core.ServerID]*memberEntry),
		pending: make(map[uint64]*pendingProbe),
		relays:  make(map[uint64]relayEntry),
		src:     rng.New(cfg.Seed ^ (uint64(uint32(cfg.Self)) << 17) ^ 0x6d656d62),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	s.incarnation = cfg.Incarnation
	s.members[cfg.Self] = &memberEntry{Member: Member{
		ID: cfg.Self, State: Alive, Incarnation: cfg.Incarnation, Addr: cfg.SelfAddr, HasState: cfg.HasState}}
	for id, addr := range cfg.Peers {
		if id == cfg.Self {
			continue
		}
		s.members[id] = &memberEntry{Member: Member{ID: id, State: Alive, Addr: addr}}
	}
	s.joined = cfg.JoinAddr == ""
	if cfg.DeadReprobeInterval > 0 {
		s.deadEvery = uint64(cfg.DeadReprobeInterval / cfg.ProbeInterval)
		if s.deadEvery < 1 {
			s.deadEvery = 1
		}
	}
	s.registerMetrics()
	return s
}

func (s *Service) registerMetrics() {
	reg := s.cfg.Registry
	if reg == nil {
		return
	}
	c := func(name, help string) *telemetry.Counter {
		return reg.Counter(name, help, s.cfg.Labels...)
	}
	s.probesSent = c("terradir_membership_probes_total", "Direct membership probes sent.")
	s.acksReceived = c("terradir_membership_acks_total", "Membership acks received.")
	s.pingReqs = c("terradir_membership_ping_reqs_total", "Indirect probe requests handled on behalf of others.")
	s.suspicions = c("terradir_membership_suspicions_total", "Members this service placed under suspicion.")
	s.deaths = c("terradir_membership_deaths_total", "Members this service transitioned to dead.")
	s.refutations = c("terradir_membership_refutations_total", "Incarnation bumps refuting suspicion or death of self.")
	s.resurrections = c("terradir_membership_resurrections_total", "Members observed returning from dead to alive.")
	s.joinsHandled = c("terradir_membership_joins_total", "Join handshakes handled (as joiner or admitter).")
	gauge := func(name, help string, st State) {
		reg.GaugeFunc(name, help, func() float64 {
			return float64(s.countState(st))
		}, s.cfg.Labels...)
	}
	gauge("terradir_membership_alive", "Members currently believed alive.", Alive)
	gauge("terradir_membership_suspect", "Members currently under suspicion.", Suspect)
	gauge("terradir_membership_dead", "Members currently believed dead.", Dead)
	reg.GaugeFunc("terradir_membership_incarnation", "This member's own incarnation number.",
		func() float64 { return float64(s.Incarnation()) }, s.cfg.Labels...)
}

// Start launches the probe loop.
func (s *Service) Start() {
	go s.run()
}

// Stop halts probing and timer callbacks. Safe to call more than once.
func (s *Service) Stop() {
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		<-s.done
		return
	}
	s.stopped = true
	s.mu.Unlock()
	close(s.stop)
	<-s.done
}

func (s *Service) run() {
	defer close(s.done)
	ticker := time.NewTicker(s.cfg.ProbeInterval)
	defer ticker.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-ticker.C:
			s.tick()
		}
	}
}

func (s *Service) tick() {
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		return
	}
	s.ticks++
	if !s.joined && s.cfg.JoinAddr != "" && s.cfg.SendAddr != nil {
		m := &core.MembershipMsg{Kind: core.MembershipJoin, From: s.cfg.Self,
			Updates: []core.MemberUpdate{s.selfUpdateLocked()}}
		s.mu.Unlock()
		_ = s.cfg.SendAddr(s.cfg.JoinAddr, m)
		return
	}
	target := s.pickProbeTargetLocked()
	if target == core.NoServer {
		s.mu.Unlock()
		return
	}
	s.seq++
	seq := s.seq
	s.pending[seq] = &pendingProbe{target: target}
	msg := s.buildLocked(core.MembershipPing, seq, s.cfg.Self, target)
	s.mu.Unlock()
	if s.probesSent != nil {
		s.probesSent.Inc()
	}
	s.cfg.Send(target, msg)
	time.AfterFunc(s.cfg.ProbeTimeout, func() { s.onDirectTimeout(seq) })
}

// pickProbeTargetLocked implements SWIM's shuffled round-robin: every member
// is probed exactly once per rotation, in an order reshuffled each round, so
// detection time is bounded rather than merely probabilistic. Every
// deadEvery-th tick one dead member is probed instead (partition heal /
// restart rediscovery).
func (s *Service) pickProbeTargetLocked() core.ServerID {
	if s.deadEvery > 0 && s.ticks%s.deadEvery == 0 {
		var dead []core.ServerID
		for id, e := range s.members {
			if e.State == Dead {
				dead = append(dead, id)
			}
		}
		if len(dead) > 0 {
			sort.Slice(dead, func(i, j int) bool { return dead[i] < dead[j] })
			return dead[s.src.Intn(len(dead))]
		}
	}
	for {
		for s.rotIdx < len(s.rotation) {
			id := s.rotation[s.rotIdx]
			s.rotIdx++
			if e, ok := s.members[id]; ok && e.State != Dead && id != s.cfg.Self {
				return id
			}
		}
		s.rotation = s.rotation[:0]
		for id, e := range s.members {
			if id != s.cfg.Self && e.State != Dead {
				s.rotation = append(s.rotation, id)
			}
		}
		if len(s.rotation) == 0 {
			return core.NoServer
		}
		sort.Slice(s.rotation, func(i, j int) bool { return s.rotation[i] < s.rotation[j] })
		s.src.Shuffle(len(s.rotation), func(i, j int) {
			s.rotation[i], s.rotation[j] = s.rotation[j], s.rotation[i]
		})
		s.rotIdx = 0
	}
}

func (s *Service) onDirectTimeout(seq uint64) {
	s.mu.Lock()
	pr, ok := s.pending[seq]
	if !ok || s.stopped {
		s.mu.Unlock()
		return
	}
	delete(s.pending, seq)
	helpers := s.pickHelpersLocked(pr.target, s.cfg.IndirectProbes)
	if len(helpers) == 0 {
		s.suspectLocked(pr.target)
		s.mu.Unlock()
		s.flushEvents()
		return
	}
	s.seq++
	seq2 := s.seq
	s.pending[seq2] = &pendingProbe{target: pr.target, indirect: true}
	msgs := make([]*core.MembershipMsg, len(helpers))
	for i := range helpers {
		msgs[i] = s.buildLocked(core.MembershipPingReq, seq2, s.cfg.Self, pr.target)
	}
	s.mu.Unlock()
	for i, h := range helpers {
		s.cfg.Send(h, msgs[i])
	}
	time.AfterFunc(2*s.cfg.ProbeTimeout, func() { s.onIndirectTimeout(seq2) })
}

func (s *Service) onIndirectTimeout(seq uint64) {
	s.mu.Lock()
	pr, ok := s.pending[seq]
	if !ok || s.stopped {
		s.mu.Unlock()
		return
	}
	delete(s.pending, seq)
	s.suspectLocked(pr.target)
	s.mu.Unlock()
	s.flushEvents()
}

// pickHelpersLocked samples up to k alive members other than self and the
// probe target.
func (s *Service) pickHelpersLocked(target core.ServerID, k int) []core.ServerID {
	var cands []core.ServerID
	for id, e := range s.members {
		if id != s.cfg.Self && id != target && e.State == Alive {
			cands = append(cands, id)
		}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i] < cands[j] })
	s.src.Shuffle(len(cands), func(i, j int) { cands[i], cands[j] = cands[j], cands[i] })
	if len(cands) > k {
		cands = cands[:k]
	}
	return cands
}

// suspectLocked starts suspicion for an alive member that failed direct and
// indirect probing.
func (s *Service) suspectLocked(id core.ServerID) {
	e, ok := s.members[id]
	if !ok || e.State != Alive {
		return
	}
	prev := e.State
	e.State = Suspect
	e.suspectInc = e.Incarnation
	inc := e.Incarnation
	s.queueLocked(core.MemberUpdate{Server: id, State: uint8(Suspect), Incarnation: inc, Addr: e.Addr})
	s.eventQ = append(s.eventQ, Event{Member: e.Member, Prev: prev})
	if s.suspicions != nil {
		s.suspicions.Inc()
	}
	time.AfterFunc(s.cfg.SuspicionTimeout, func() { s.onSuspicionExpired(id, inc) })
}

func (s *Service) onSuspicionExpired(id core.ServerID, inc uint64) {
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		return
	}
	e, ok := s.members[id]
	if !ok || e.State != Suspect || e.suspectInc != inc {
		s.mu.Unlock()
		return // refuted or superseded while the timer ran
	}
	prev := e.State
	e.State = Dead
	s.queueLocked(core.MemberUpdate{Server: id, State: uint8(Dead), Incarnation: e.Incarnation, Addr: e.Addr})
	s.eventQ = append(s.eventQ, Event{Member: e.Member, Prev: prev})
	if s.deaths != nil {
		s.deaths.Inc()
	}
	s.mu.Unlock()
	s.flushEvents()
}

// Deliver ingests an inbound membership message. Safe from any goroutine.
// Warmup frames are the driver's business and are ignored here beyond their
// piggybacked updates.
func (s *Service) Deliver(m *core.MembershipMsg) {
	if m == nil {
		return
	}
	var reply *core.MembershipMsg
	var replyTo core.ServerID
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		return
	}
	switch m.Kind {
	case core.MembershipPing:
		s.absorbLocked(m)
		reply = s.buildLocked(core.MembershipAck, m.Seq, s.cfg.Self, s.cfg.Self)
		replyTo = m.From
	case core.MembershipAck:
		s.absorbLocked(m)
		if s.acksReceived != nil {
			s.acksReceived.Inc()
		}
		if pr, ok := s.pending[m.Seq]; ok && (m.From == pr.target || m.Target == pr.target) {
			delete(s.pending, m.Seq)
			s.probeSucceededLocked(pr.target, m.From == pr.target)
		}
		if rl, ok := s.relays[m.Seq]; ok && m.From == rl.target {
			delete(s.relays, m.Seq)
			reply = s.buildLocked(core.MembershipAck, rl.originSeq, s.cfg.Self, rl.target)
			replyTo = rl.origin
		}
	case core.MembershipPingReq:
		s.absorbLocked(m)
		if s.pingReqs != nil {
			s.pingReqs.Inc()
		}
		s.seq++
		relaySeq := s.seq
		s.relays[relaySeq] = relayEntry{origin: m.From, originSeq: m.Seq, target: m.Target}
		reply = s.buildLocked(core.MembershipPing, relaySeq, s.cfg.Self, m.Target)
		replyTo = m.Target
		time.AfterFunc(4*s.cfg.ProbeTimeout, func() {
			s.mu.Lock()
			delete(s.relays, relaySeq)
			s.mu.Unlock()
		})
	case core.MembershipJoin:
		// Learn the joiner's address unconditionally (its alive claim may
		// lose the incarnation race against our dead record — the snapshot
		// below lets it refute), then answer with the full membership view.
		for _, u := range m.Updates {
			if u.Server == m.From && u.Addr != "" {
				if e, ok := s.members[u.Server]; ok && e.Addr != u.Addr {
					e.Addr = u.Addr
				}
				if s.cfg.OnAddr != nil {
					s.cfg.OnAddr(u.Server, u.Addr)
				}
			}
		}
		s.absorbLocked(m)
		if s.joinsHandled != nil {
			s.joinsHandled.Inc()
		}
		reply = s.snapshotLocked()
		replyTo = m.From
	case core.MembershipJoinAck:
		if !s.joined {
			s.joined = true
			if s.joinsHandled != nil {
				s.joinsHandled.Inc()
			}
		}
		s.absorbLocked(m)
	default:
		s.absorbLocked(m)
	}
	s.mu.Unlock()
	s.flushEvents()
	if reply != nil {
		s.cfg.Send(replyTo, reply)
	}
}

// probeSucceededLocked records liveness evidence for a probed member. A
// direct ack clears local suspicion at the same incarnation (the suspect
// broadcast is refuted globally by the member's own incarnation bump, which
// its ack's piggybacked self-update carries when it has seen the claim).
func (s *Service) probeSucceededLocked(id core.ServerID, direct bool) {
	e, ok := s.members[id]
	if !ok || !direct || e.State != Suspect {
		return
	}
	prev := e.State
	e.State = Alive
	e.suspectInc = e.Incarnation // invalidate only logically; timer checks state too
	s.eventQ = append(s.eventQ, Event{Member: e.Member, Prev: prev})
}

// selfUpdateLocked is the always-first piggybacked delta: our own aliveness,
// incarnation and dialable address.
func (s *Service) selfUpdateLocked() core.MemberUpdate {
	return core.MemberUpdate{
		Server: s.cfg.Self, State: uint8(Alive), Incarnation: s.incarnation,
		Addr: s.cfg.SelfAddr, HasState: s.cfg.HasState}
}

// buildLocked assembles an outgoing message: self-update first, the target's
// non-alive claim if we hold one (so the accused can refute), then the
// piggyback queue drained by remaining-budget priority.
func (s *Service) buildLocked(kind uint8, seq uint64, from, target core.ServerID) *core.MembershipMsg {
	m := &core.MembershipMsg{Kind: kind, Seq: seq, From: from, Target: target}
	m.Updates = append(m.Updates, s.selfUpdateLocked())
	if e, ok := s.members[target]; ok && target != s.cfg.Self && e.State != Alive {
		m.Updates = append(m.Updates, core.MemberUpdate{
			Server: target, State: uint8(e.State), Incarnation: e.Incarnation, Addr: e.Addr})
	}
	if len(s.updates) > 1 {
		sort.SliceStable(s.updates, func(i, j int) bool { return s.updates[i].left > s.updates[j].left })
	}
	kept := s.updates[:0]
	for _, qu := range s.updates {
		already := false
		for _, u := range m.Updates {
			if u.Server == qu.u.Server {
				already = true
				break
			}
		}
		if !already && len(m.Updates) < s.cfg.MaxUpdatesPerMessage {
			m.Updates = append(m.Updates, qu.u)
			qu.left--
		}
		if qu.left > 0 {
			kept = append(kept, qu)
		}
	}
	s.updates = kept
	return m
}

// snapshotLocked builds a JoinAck carrying the entire member table.
func (s *Service) snapshotLocked() *core.MembershipMsg {
	m := &core.MembershipMsg{Kind: core.MembershipJoinAck, From: s.cfg.Self}
	ids := make([]core.ServerID, 0, len(s.members))
	for id := range s.members {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		e := s.members[id]
		inc := e.Incarnation
		if id == s.cfg.Self {
			inc = s.incarnation
		}
		m.Updates = append(m.Updates, core.MemberUpdate{
			Server: id, State: uint8(e.State), Incarnation: inc,
			Addr: e.Addr, HasState: e.HasState})
	}
	return m
}

// queueLocked enqueues a delta for piggybacked dissemination, superseding
// any queued claim about the same server. The retransmit budget is
// RetransmitFactor × ⌈log₂(members+1)⌉ — SWIM's epidemic bound.
func (s *Service) queueLocked(u core.MemberUpdate) {
	budget := s.cfg.RetransmitFactor * bits.Len(uint(len(s.members)+1))
	for _, qu := range s.updates {
		if qu.u.Server == u.Server {
			qu.u = u
			qu.left = budget
			return
		}
	}
	s.updates = append(s.updates, &queuedUpdate{u: u, left: budget})
}

// absorbLocked folds every piggybacked delta into the member table.
func (s *Service) absorbLocked(m *core.MembershipMsg) {
	for _, u := range m.Updates {
		s.applyLocked(u)
	}
}

// applyLocked applies one delta under SWIM's precedence rules:
//
//   - about self: any non-alive claim at an incarnation ≥ ours is refuted by
//     bumping past it and re-announcing aliveness;
//   - alive overrides only strictly newer incarnations;
//   - suspect overrides alive at the same incarnation, or anything older;
//   - dead overrides suspect/alive at the same or older incarnation (death
//     is sticky; resurrection needs a strictly newer alive).
func (s *Service) applyLocked(u core.MemberUpdate) {
	if u.Server == s.cfg.Self {
		if State(u.State) != Alive && u.Incarnation >= s.incarnation {
			s.incarnation = u.Incarnation + 1
			if s.refutations != nil {
				s.refutations.Inc()
			}
			if s.cfg.OnIncarnation != nil {
				s.cfg.OnIncarnation(s.incarnation)
			}
			s.queueLocked(s.selfUpdateLocked())
		}
		return
	}
	e, known := s.members[u.Server]
	if !known {
		e = &memberEntry{Member: Member{
			ID: u.Server, State: State(u.State), Incarnation: u.Incarnation,
			Addr: u.Addr, HasState: u.HasState}}
		s.members[u.Server] = e
		if u.Addr != "" && s.cfg.OnAddr != nil {
			s.cfg.OnAddr(u.Server, u.Addr)
		}
		s.queueLocked(u)
		s.eventQ = append(s.eventQ, Event{Member: e.Member, Prev: e.State, Joined: true})
		if e.State == Suspect {
			s.armSuspicionLocked(e)
		}
		return
	}
	accept := false
	switch State(u.State) {
	case Alive:
		accept = u.Incarnation > e.Incarnation
	case Suspect:
		accept = u.Incarnation > e.Incarnation ||
			(u.Incarnation == e.Incarnation && e.State == Alive)
	case Dead:
		accept = e.State != Dead && u.Incarnation >= e.Incarnation
	}
	if !accept {
		return
	}
	prev := e.State
	e.State = State(u.State)
	e.Incarnation = u.Incarnation
	e.HasState = u.HasState
	if u.Addr != "" && u.Addr != e.Addr {
		e.Addr = u.Addr
		if s.cfg.OnAddr != nil {
			s.cfg.OnAddr(u.Server, u.Addr)
		}
	}
	s.queueLocked(core.MemberUpdate{
		Server: u.Server, State: u.State, Incarnation: u.Incarnation,
		Addr: e.Addr, HasState: u.HasState})
	if e.State == Suspect {
		s.armSuspicionLocked(e)
	}
	if e.State != prev {
		s.eventQ = append(s.eventQ, Event{Member: e.Member, Prev: prev})
		switch {
		case e.State == Dead && s.deaths != nil:
			s.deaths.Inc()
		case prev == Dead && e.State == Alive && s.resurrections != nil:
			s.resurrections.Inc()
		}
	}
}

func (s *Service) armSuspicionLocked(e *memberEntry) {
	e.suspectInc = e.Incarnation
	id, inc := e.ID, e.Incarnation
	time.AfterFunc(s.cfg.SuspicionTimeout, func() { s.onSuspicionExpired(id, inc) })
}

// flushEvents drains queued events to OnEvent, serialized: the evMu holder
// empties the queue, so events are observed in the order they were produced
// even when multiple goroutines race into this method.
func (s *Service) flushEvents() {
	if s.cfg.OnEvent == nil {
		s.mu.Lock()
		s.eventQ = nil
		s.mu.Unlock()
		return
	}
	s.evMu.Lock()
	defer s.evMu.Unlock()
	for {
		s.mu.Lock()
		if len(s.eventQ) == 0 {
			s.mu.Unlock()
			return
		}
		ev := s.eventQ[0]
		s.eventQ = s.eventQ[1:]
		s.mu.Unlock()
		s.cfg.OnEvent(ev)
	}
}

// Members returns a snapshot of the member table, sorted by ID.
func (s *Service) Members() []Member {
	s.mu.Lock()
	out := make([]Member, 0, len(s.members))
	for _, e := range s.members {
		m := e.Member
		if m.ID == s.cfg.Self {
			m.Incarnation = s.incarnation
		}
		out = append(out, m)
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// StateOf returns the service's belief about one member (Dead, false if
// unknown).
func (s *Service) StateOf(id core.ServerID) (State, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.members[id]
	if !ok {
		return Dead, false
	}
	return e.State, true
}

// Incarnation returns this member's own incarnation number.
func (s *Service) Incarnation() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.incarnation
}

// Joined reports whether the join handshake completed (always true for
// statically bootstrapped services).
func (s *Service) Joined() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.joined
}

func (s *Service) countState(st State) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, e := range s.members {
		if e.State == st {
			n++
		}
	}
	return n
}

// String summarizes the service for logs.
func (s *Service) String() string {
	return fmt.Sprintf("membership(self=%d alive=%d suspect=%d dead=%d inc=%d)",
		s.cfg.Self, s.countState(Alive), s.countState(Suspect), s.countState(Dead), s.Incarnation())
}
