package membership

import (
	"sync"

	"terradir/internal/core"
)

// Reassignment records one namespace node changing effective owner after a
// membership transition.
type Reassignment struct {
	Node core.NodeID
	From core.ServerID
	To   core.ServerID
}

// OwnershipTable is the versioned node→owner mapping the overlay routes by
// under churn. Every node has a base owner from the deployment-wide static
// assignment; its effective owner is the first *alive* server in ring order
// starting at the base (base, base+1, … mod servers). Because the base
// assignment and the ring rule are deterministic, every peer that holds the
// same liveness view computes the same handoff without any consensus round —
// disagreement during detection skew is just more soft-state staleness, which
// the protocol already repairs.
//
// The table is safe for concurrent use: the membership service mutates it
// from event context while lookups read Owner from the routing path.
type OwnershipTable struct {
	mu      sync.Mutex
	base    []core.ServerID
	alive   []bool
	eff     []core.ServerID
	version uint64
}

// NewOwnershipTable builds a table over the base assignment (index = node ID)
// for a deployment of the given server count. All servers start alive.
func NewOwnershipTable(base []core.ServerID, servers int) *OwnershipTable {
	t := &OwnershipTable{
		base:  append([]core.ServerID(nil), base...),
		alive: make([]bool, servers),
		eff:   append([]core.ServerID(nil), base...),
	}
	for i := range t.alive {
		t.alive[i] = true
	}
	return t
}

// Owner returns the node's current effective owner.
func (t *OwnershipTable) Owner(nd core.NodeID) core.ServerID {
	t.mu.Lock()
	defer t.mu.Unlock()
	if int(nd) < 0 || int(nd) >= len(t.eff) {
		return core.NoServer
	}
	return t.eff[nd]
}

// BaseOwner returns the node's static (pre-churn) owner.
func (t *OwnershipTable) BaseOwner(nd core.NodeID) core.ServerID {
	t.mu.Lock()
	defer t.mu.Unlock()
	if int(nd) < 0 || int(nd) >= len(t.base) {
		return core.NoServer
	}
	return t.base[nd]
}

// Version returns the table's change counter (bumped on every effective
// liveness flip).
func (t *OwnershipTable) Version() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.version
}

// Alive reports the table's current liveness belief for a server.
func (t *OwnershipTable) Alive(s core.ServerID) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return int(s) >= 0 && int(s) < len(t.alive) && t.alive[s]
}

// SetAlive updates a server's liveness and recomputes effective ownership,
// returning every node whose owner changed (empty when the flag was already
// set). A dead server's nodes move to their ring successors; a returning
// server reclaims its base nodes.
func (t *OwnershipTable) SetAlive(s core.ServerID, alive bool) []Reassignment {
	t.mu.Lock()
	defer t.mu.Unlock()
	if int(s) < 0 || int(s) >= len(t.alive) || t.alive[s] == alive {
		return nil
	}
	t.alive[s] = alive
	t.version++
	var out []Reassignment
	for nd, b := range t.base {
		want := t.successorLocked(b)
		if want != t.eff[nd] {
			out = append(out, Reassignment{Node: core.NodeID(nd), From: t.eff[nd], To: want})
			t.eff[nd] = want
		}
	}
	return out
}

// successorLocked returns the first alive server in ring order from base, or
// base itself when the view says nobody is alive (the caller is always alive
// in its own view, so this only happens in degenerate tests).
func (t *OwnershipTable) successorLocked(base core.ServerID) core.ServerID {
	n := len(t.alive)
	for k := 0; k < n; k++ {
		c := (int(base) + k) % n
		if t.alive[c] {
			return core.ServerID(c)
		}
	}
	return base
}
