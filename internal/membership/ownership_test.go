package membership

import (
	"testing"

	"terradir/internal/core"
)

func TestOwnershipHandoffAndReclaim(t *testing.T) {
	base := []core.ServerID{0, 1, 2, 0, 1, 2}
	tbl := NewOwnershipTable(base, 3)

	for nd, want := range base {
		if got := tbl.Owner(core.NodeID(nd)); got != want {
			t.Fatalf("initial owner(%d) = %d, want %d", nd, got, want)
		}
	}
	if v := tbl.Version(); v != 0 {
		t.Fatalf("fresh table version = %d, want 0", v)
	}

	// Kill 1: its nodes (1, 4) hand off to ring successor 2.
	ch := tbl.SetAlive(1, false)
	if len(ch) != 2 {
		t.Fatalf("SetAlive(1,false) moved %d nodes, want 2: %+v", len(ch), ch)
	}
	for _, r := range ch {
		if r.From != 1 || r.To != 2 {
			t.Errorf("reassignment %+v, want 1→2", r)
		}
	}
	if got := tbl.Owner(1); got != 2 {
		t.Errorf("owner(1) = %d after killing 1, want 2", got)
	}
	if got := tbl.BaseOwner(1); got != 1 {
		t.Errorf("base owner must stay 1, got %d", got)
	}
	if tbl.Alive(1) || !tbl.Alive(2) {
		t.Error("liveness flags wrong after SetAlive(1,false)")
	}

	// Kill 2 as well: everything 1- or 2-based wraps around to 0.
	tbl.SetAlive(2, false)
	for _, nd := range []core.NodeID{1, 2, 4, 5} {
		if got := tbl.Owner(nd); got != 0 {
			t.Errorf("owner(%d) = %d with only 0 alive, want 0", nd, got)
		}
	}

	// 1 returns: it reclaims exactly its base nodes; 2's stay handed off.
	ch = tbl.SetAlive(1, true)
	for _, r := range ch {
		if r.To != 1 || tbl.BaseOwner(r.Node) != 1 {
			t.Errorf("reclaim reassignment %+v not a base node of 1", r)
		}
	}
	if got := tbl.Owner(4); got != 1 {
		t.Errorf("owner(4) = %d after 1 returned, want 1", got)
	}
	if got := tbl.Owner(5); got != 0 {
		t.Errorf("owner(5) = %d while 2 is still dead, want 0", got)
	}

	if v := tbl.Version(); v != 3 {
		t.Errorf("version = %d after three flips, want 3", v)
	}

	// Redundant flips are no-ops.
	if ch := tbl.SetAlive(1, true); ch != nil {
		t.Errorf("redundant SetAlive returned %+v, want nil", ch)
	}
	if v := tbl.Version(); v != 3 {
		t.Errorf("version bumped by redundant flip: %d", v)
	}
}

func TestOwnershipOutOfRange(t *testing.T) {
	tbl := NewOwnershipTable([]core.ServerID{0, 1}, 2)
	if got := tbl.Owner(99); got != core.NoServer {
		t.Errorf("owner(99) = %d, want NoServer", got)
	}
	if got := tbl.BaseOwner(-1); got != core.NoServer {
		t.Errorf("baseOwner(-1) = %d, want NoServer", got)
	}
	if tbl.Alive(5) {
		t.Error("out-of-range server reported alive")
	}
	if ch := tbl.SetAlive(9, false); ch != nil {
		t.Errorf("SetAlive out of range returned %+v", ch)
	}
}
