package membership

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"terradir/internal/core"
)

// hub is an in-memory message fabric for membership services: delivery by
// server ID or by address, with per-direction link cuts and downed members,
// so SWIM scenarios run without sockets or the overlay.
type hub struct {
	mu     sync.Mutex
	svcs   map[core.ServerID]*Service
	addrs  map[string]core.ServerID
	down   map[core.ServerID]bool
	cut    map[[2]core.ServerID]bool
	onSend func(from, to core.ServerID, m *core.MembershipMsg)
}

func newHub() *hub {
	return &hub{
		svcs:  make(map[core.ServerID]*Service),
		addrs: make(map[string]core.ServerID),
		down:  make(map[core.ServerID]bool),
		cut:   make(map[[2]core.ServerID]bool),
	}
}

func hubAddr(id core.ServerID) string { return fmt.Sprintf("hub:%d", id) }

func (h *hub) deliver(from, to core.ServerID, m *core.MembershipMsg) {
	h.mu.Lock()
	s := h.svcs[to]
	blocked := h.down[from] || h.down[to] || h.cut[[2]core.ServerID{from, to}]
	hook := h.onSend
	h.mu.Unlock()
	if hook != nil {
		hook(from, to, m)
	}
	if s == nil || blocked {
		return
	}
	go s.Deliver(m)
}

// add builds (but does not start) a service wired to the hub. The caller owns
// Self/Peers/JoinAddr/Options in cfg; Send/SendAddr/SelfAddr are filled here.
func (h *hub) add(cfg Config) *Service {
	id := cfg.Self
	cfg.SelfAddr = hubAddr(id)
	cfg.Send = func(to core.ServerID, m *core.MembershipMsg) { h.deliver(id, to, m) }
	cfg.SendAddr = func(addr string, m *core.MembershipMsg) error {
		h.mu.Lock()
		to, ok := h.addrs[addr]
		h.mu.Unlock()
		if !ok {
			return fmt.Errorf("hub: no listener at %s", addr)
		}
		h.deliver(id, to, m)
		return nil
	}
	s := New(cfg)
	h.mu.Lock()
	h.svcs[id] = s
	h.addrs[cfg.SelfAddr] = id
	h.mu.Unlock()
	return s
}

func (h *hub) setDown(id core.ServerID, down bool) {
	h.mu.Lock()
	h.down[id] = down
	h.mu.Unlock()
}

func (h *hub) cutBoth(a, b core.ServerID) {
	h.mu.Lock()
	h.cut[[2]core.ServerID{a, b}] = true
	h.cut[[2]core.ServerID{b, a}] = true
	h.mu.Unlock()
}

// staticPeers is the full deployment address book for n servers.
func staticPeers(n int) map[core.ServerID]string {
	peers := make(map[core.ServerID]string, n)
	for i := 0; i < n; i++ {
		peers[core.ServerID(i)] = hubAddr(core.ServerID(i))
	}
	return peers
}

// fastOpts keeps scenario wall time low while leaving margin for the race
// detector's scheduling overhead.
func fastOpts(seed uint64) Options {
	return Options{
		ProbeInterval:       25 * time.Millisecond,
		ProbeTimeout:        15 * time.Millisecond,
		SuspicionTimeout:    150 * time.Millisecond,
		DeadReprobeInterval: 100 * time.Millisecond,
		Seed:                seed,
	}
}

func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out after %v waiting for %s", d, what)
}

func TestStaticConvergenceStaysAlive(t *testing.T) {
	h := newHub()
	const n = 5
	var svcs []*Service
	for i := 0; i < n; i++ {
		svcs = append(svcs, h.add(Config{
			Self: core.ServerID(i), Peers: staticPeers(n), Options: fastOpts(uint64(i) + 1),
		}))
	}
	for _, s := range svcs {
		s.Start()
	}
	defer func() {
		for _, s := range svcs {
			s.Stop()
		}
	}()

	time.Sleep(300 * time.Millisecond) // many full probe rotations
	for i, s := range svcs {
		ms := s.Members()
		if len(ms) != n {
			t.Fatalf("service %d sees %d members, want %d", i, len(ms), n)
		}
		for _, m := range ms {
			if m.State != Alive {
				t.Errorf("service %d believes %d is %v, want alive", i, m.ID, m.State)
			}
		}
	}
}

func TestFailureDetection(t *testing.T) {
	h := newHub()
	const n = 5
	var svcs []*Service
	for i := 0; i < n; i++ {
		svcs = append(svcs, h.add(Config{
			Self: core.ServerID(i), Peers: staticPeers(n), Options: fastOpts(uint64(i) + 11),
		}))
	}
	for _, s := range svcs {
		s.Start()
	}
	defer func() {
		for _, s := range svcs {
			s.Stop()
		}
	}()

	const victim = core.ServerID(4)
	h.setDown(victim, true)
	svcs[victim].Stop()

	waitFor(t, 5*time.Second, "all survivors to declare the victim dead", func() bool {
		for i := 0; i < n-1; i++ {
			if st, ok := svcs[i].StateOf(victim); !ok || st != Dead {
				return false
			}
		}
		return true
	})
	// Survivors must not have condemned each other along the way.
	for i := 0; i < n-1; i++ {
		for j := 0; j < n-1; j++ {
			if st, _ := svcs[i].StateOf(core.ServerID(j)); st == Dead {
				t.Errorf("service %d wrongly believes live peer %d dead", i, j)
			}
		}
	}
}

func TestIndirectProbeMasksOneLinkCut(t *testing.T) {
	h := newHub()
	const n = 3
	var pingReqs int
	h.onSend = func(from, to core.ServerID, m *core.MembershipMsg) {
		if m.Kind == core.MembershipPingReq {
			h.mu.Lock()
			pingReqs++
			h.mu.Unlock()
		}
	}
	var svcs []*Service
	for i := 0; i < n; i++ {
		svcs = append(svcs, h.add(Config{
			Self: core.ServerID(i), Peers: staticPeers(n), Options: fastOpts(uint64(i) + 21),
		}))
	}
	// Sever the 0↔1 link in both directions; 2 can still reach both.
	h.cutBoth(0, 1)
	for _, s := range svcs {
		s.Start()
	}
	defer func() {
		for _, s := range svcs {
			s.Stop()
		}
	}()

	time.Sleep(600 * time.Millisecond) // several probe rotations across the cut
	if st, _ := svcs[0].StateOf(1); st == Dead {
		t.Errorf("0 declared 1 dead despite an indirect path through 2")
	}
	if st, _ := svcs[1].StateOf(0); st == Dead {
		t.Errorf("1 declared 0 dead despite an indirect path through 2")
	}
	h.mu.Lock()
	reqs := pingReqs
	h.mu.Unlock()
	if reqs == 0 {
		t.Errorf("no indirect probe requests were ever sent across the cut")
	}
}

func TestRefutationBumpsIncarnation(t *testing.T) {
	var mu sync.Mutex
	var sent []*core.MembershipMsg
	s := New(Config{
		Self:  0,
		Peers: map[core.ServerID]string{1: ""},
		Send: func(to core.ServerID, m *core.MembershipMsg) {
			mu.Lock()
			sent = append(sent, m)
			mu.Unlock()
		},
		Options: Options{Seed: 7},
	})
	// Not started: Deliver works standalone, so no Stop either.

	// Peer 1 pings us carrying a suspicion claim about ourselves at our own
	// incarnation. SWIM's refutation: bump past it and re-announce aliveness.
	s.Deliver(&core.MembershipMsg{
		Kind: core.MembershipPing, Seq: 1, From: 1, Target: 0,
		Updates: []core.MemberUpdate{{Server: 0, State: uint8(Suspect), Incarnation: 0}},
	})
	if got := s.Incarnation(); got != 1 {
		t.Fatalf("incarnation = %d after suspect-self claim, want 1", got)
	}
	mu.Lock()
	if len(sent) != 1 || sent[0].Kind != core.MembershipAck {
		mu.Unlock()
		t.Fatalf("expected exactly one ack reply, got %d messages", len(sent))
	}
	u := sent[0].Updates[0]
	mu.Unlock()
	if u.Server != 0 || State(u.State) != Alive || u.Incarnation != 1 {
		t.Errorf("ack self-update = %+v, want alive@1 about self", u)
	}

	// A dead claim at the bumped incarnation must be refuted again, past it.
	s.Deliver(&core.MembershipMsg{
		Kind: core.MembershipPing, Seq: 2, From: 1, Target: 0,
		Updates: []core.MemberUpdate{{Server: 0, State: uint8(Dead), Incarnation: 5}},
	})
	if got := s.Incarnation(); got != 6 {
		t.Fatalf("incarnation = %d after dead-self claim at 5, want 6", got)
	}
}

func TestUpdatePrecedence(t *testing.T) {
	s := New(Config{
		Self:    0,
		Peers:   map[core.ServerID]string{1: ""},
		Send:    func(core.ServerID, *core.MembershipMsg) {},
		Options: Options{Seed: 3, SuspicionTimeout: time.Hour}, // timers must not fire mid-table
	})
	apply := func(st State, inc uint64) {
		// Kind 0 hits Deliver's default branch: absorb only, no reply.
		s.Deliver(&core.MembershipMsg{
			Updates: []core.MemberUpdate{{Server: 1, State: uint8(st), Incarnation: inc}},
		})
	}
	expect := func(step string, want State) {
		t.Helper()
		if got, _ := s.StateOf(1); got != want {
			t.Fatalf("%s: state = %v, want %v", step, got, want)
		}
	}

	expect("initially", Alive)
	apply(Alive, 0)
	expect("alive@0 over alive@0", Alive)
	apply(Suspect, 0)
	expect("suspect@0 over alive@0", Suspect) // suspicion wins at equal incarnation
	apply(Alive, 0)
	expect("alive@0 over suspect@0", Suspect) // stale alive cannot clear suspicion
	apply(Alive, 1)
	expect("alive@1 over suspect@0", Alive) // refutation: strictly newer alive
	apply(Dead, 0)
	expect("dead@0 over alive@1", Alive) // stale death is ignored
	apply(Dead, 1)
	expect("dead@1 over alive@1", Dead) // death wins at equal incarnation
	apply(Suspect, 1)
	expect("suspect@1 over dead@1", Dead) // death is sticky at the same incarnation
	apply(Alive, 1)
	expect("alive@1 over dead@1", Dead)
	apply(Alive, 2)
	expect("alive@2 over dead@1", Alive) // resurrection needs a strictly newer alive
	apply(Dead, 2)
	expect("dead@2 over alive@2", Dead)
	apply(Suspect, 9)
	// A strictly newer suspicion proves the member lived past the death record
	// (only the member itself bumps its incarnation), so it resurrects as suspect.
	expect("suspect@9 over dead@2", Suspect)
}

func TestJoinHandshake(t *testing.T) {
	h := newHub()
	boot := h.add(Config{Self: 0, Options: fastOpts(31)})
	var mu sync.Mutex
	learned := map[core.ServerID]string{}
	joiner := h.add(Config{
		Self:     1,
		JoinAddr: hubAddr(0),
		OnAddr: func(id core.ServerID, addr string) {
			mu.Lock()
			learned[id] = addr
			mu.Unlock()
		},
		Options: fastOpts(32),
	})
	if joiner.Joined() {
		t.Fatal("joiner claims joined before the handshake")
	}
	boot.Start()
	joiner.Start()
	defer boot.Stop()
	defer joiner.Stop()

	waitFor(t, 5*time.Second, "join handshake to complete", joiner.Joined)
	waitFor(t, 5*time.Second, "mutual alive view", func() bool {
		a, okA := boot.StateOf(1)
		b, okB := joiner.StateOf(0)
		return okA && okB && a == Alive && b == Alive
	})
	mu.Lock()
	defer mu.Unlock()
	if learned[0] != hubAddr(0) {
		t.Errorf("joiner learned addr %q for bootstrap, want %q", learned[0], hubAddr(0))
	}
}

func TestPartitionHealResurrection(t *testing.T) {
	h := newHub()
	const n = 3
	var svcs []*Service
	for i := 0; i < n; i++ {
		svcs = append(svcs, h.add(Config{
			Self: core.ServerID(i), Peers: staticPeers(n), Options: fastOpts(uint64(i) + 41),
		}))
	}
	for _, s := range svcs {
		s.Start()
	}
	defer func() {
		for _, s := range svcs {
			s.Stop()
		}
	}()

	// Isolate 2 (both directions, but keep its process running).
	h.setDown(2, true)
	waitFor(t, 5*time.Second, "survivors to declare 2 dead", func() bool {
		a, _ := svcs[0].StateOf(2)
		b, _ := svcs[1].StateOf(2)
		return a == Dead && b == Dead
	})

	// Heal. The dead-reprobe path pings 2 carrying the dead claim about it;
	// 2 refutes by bumping its incarnation, and the fresh alive resurrects it.
	h.setDown(2, false)
	waitFor(t, 10*time.Second, "survivors to resurrect 2", func() bool {
		a, _ := svcs[0].StateOf(2)
		b, _ := svcs[1].StateOf(2)
		return a == Alive && b == Alive
	})
	if inc := svcs[2].Incarnation(); inc == 0 {
		t.Errorf("resurrected member never bumped its incarnation")
	}
}

func TestRestartRejoinsAsNewProcess(t *testing.T) {
	h := newHub()
	const n = 3
	var svcs []*Service
	for i := 0; i < n; i++ {
		svcs = append(svcs, h.add(Config{
			Self: core.ServerID(i), Peers: staticPeers(n), Options: fastOpts(uint64(i) + 51),
		}))
	}
	for _, s := range svcs {
		s.Start()
	}
	defer func() {
		for i, s := range svcs {
			if i != 2 {
				s.Stop()
			}
		}
	}()

	// Crash 2 for real.
	h.setDown(2, true)
	svcs[2].Stop()
	waitFor(t, 5*time.Second, "survivors to declare 2 dead", func() bool {
		a, _ := svcs[0].StateOf(2)
		b, _ := svcs[1].StateOf(2)
		return a == Dead && b == Dead
	})

	// Restart as a fresh process (incarnation 0) bootstrapping via join. The
	// JoinAck snapshot carries the dead record about itself, which forces the
	// incarnation bump that lets the rejoin override the sticky death.
	h.mu.Lock()
	delete(h.svcs, 2)
	delete(h.addrs, hubAddr(2))
	h.down[2] = false
	h.mu.Unlock()
	fresh := h.add(Config{Self: 2, JoinAddr: hubAddr(0), Options: fastOpts(99)})
	fresh.Start()
	defer fresh.Stop()

	waitFor(t, 10*time.Second, "survivors to readmit the restarted member", func() bool {
		a, _ := svcs[0].StateOf(2)
		b, _ := svcs[1].StateOf(2)
		return a == Alive && b == Alive && fresh.Joined()
	})
	if inc := fresh.Incarnation(); inc == 0 {
		t.Errorf("restarted member should have bumped past its old dead record")
	}
}

func TestPiggybackBudgetDrains(t *testing.T) {
	s := New(Config{
		Self:    0,
		Peers:   map[core.ServerID]string{1: "", 2: "", 3: ""},
		Send:    func(core.ServerID, *core.MembershipMsg) {},
		Options: Options{Seed: 5, RetransmitFactor: 1, SuspicionTimeout: time.Hour},
	})
	// Learn one delta about server 3 (suspect), then repeatedly build outgoing
	// messages; the delta must appear a bounded number of times and then stop.
	s.Deliver(&core.MembershipMsg{
		Updates: []core.MemberUpdate{{Server: 3, State: uint8(Suspect), Incarnation: 0}},
	})
	appearances := 0
	for i := 0; i < 50; i++ {
		s.mu.Lock()
		m := s.buildLocked(core.MembershipPing, uint64(i), 0, 1)
		s.mu.Unlock()
		for _, u := range m.Updates {
			if u.Server == 3 {
				appearances++
			}
		}
	}
	if appearances == 0 {
		t.Fatal("learned delta was never piggybacked")
	}
	if appearances >= 50 {
		t.Fatalf("delta piggybacked on every message — retransmit budget not enforced")
	}
}
