package terradir_test

import (
	"context"
	"testing"
	"time"

	"terradir"
)

func TestFacadeNamespaces(t *testing.T) {
	ns := terradir.NewBalancedNamespace(2, 15)
	if ns.Len() != 32767 {
		t.Fatalf("Ns = %d nodes", ns.Len())
	}
	fs := terradir.NewFileSystemNamespace(1, 5000)
	if fs.Len() < 4500 || fs.Len() > 5500 {
		t.Fatalf("fs namespace = %d nodes", fs.Len())
	}
	if err := fs.Validate(); err != nil {
		t.Fatal(err)
	}
	parsed, err := terradir.ParseNamespace([]int32{-1, 0}, []string{"", "a"})
	if err != nil || parsed.Len() != 2 {
		t.Fatalf("ParseNamespace: %v", err)
	}
	if _, err := terradir.ParseNamespace([]int32{0}, []string{"x"}); err == nil {
		t.Fatal("bad parents accepted")
	}
}

func TestFacadeSimulation(t *testing.T) {
	ns := terradir.NewBalancedNamespace(2, 9)
	p := terradir.DefaultSimParams(ns, 16)
	sim, err := terradir.NewSimulation(p)
	if err != nil {
		t.Fatal(err)
	}
	w := terradir.ShiftingHotspotWorkload(ns, 5, 1.2, 300, 2, 10, 2)
	sim.Run(w, 10)
	sim.Drain(20)
	if sim.Metrics.Completed == 0 {
		t.Fatal("simulation completed nothing")
	}
	w2 := terradir.ZipfWorkload(ns, 6, 1.0, 200, 5)
	sim.Run(w2, 5)
	sim.Drain(20)
	if sim.Metrics.Completed < 2000 {
		t.Fatalf("completed = %d", sim.Metrics.Completed)
	}
}

func TestFacadeOverlay(t *testing.T) {
	ns := terradir.NewBalancedNamespace(2, 8)
	ov, err := terradir.NewLocalOverlay(ns, terradir.OverlayOptions{Servers: 6, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer ov.StopAll()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	res, err := ov.LookupName(ctx, 0, ns.Name(111))
	if err != nil || !res.OK {
		t.Fatalf("overlay lookup: %v %+v", err, res)
	}
	if _, err := terradir.NewLocalOverlay(nil, terradir.OverlayOptions{Servers: 2}); err == nil {
		t.Fatal("nil namespace accepted")
	}
}

func TestFacadeExperiments(t *testing.T) {
	if len(terradir.Experiments()) != 15 {
		t.Fatalf("experiments = %d", len(terradir.Experiments()))
	}
	r, err := terradir.RunExperiment("table1", terradir.ReducedScale(0.02, 1))
	if err != nil || len(r.Rows) != 4 {
		t.Fatalf("table1: %v", err)
	}
	if _, err := terradir.RunExperiment("fig99", terradir.PaperScale()); err == nil {
		t.Fatal("unknown experiment accepted")
	}
	if terradir.PaperScale().Scale != 1 {
		t.Fatal("PaperScale not full scale")
	}
}

func TestFacadeAssignOwners(t *testing.T) {
	ns := terradir.NewBalancedNamespace(2, 6)
	owners := terradir.AssignOwners(ns, 4, 9)
	if len(owners) != ns.Len() {
		t.Fatal("assignment length wrong")
	}
	for _, o := range owners {
		if o < 0 || o >= 4 {
			t.Fatalf("owner out of range: %d", o)
		}
	}
}
