package terradir_test

import (
	"fmt"

	"terradir"
)

// ExampleTreeBuilder shows hand-building the paper's Fig. 1 namespace and
// the namespace-distance metric the routing protocol minimizes.
func ExampleTreeBuilder() {
	var b terradir.TreeBuilder
	root := b.AddRoot("university")
	pub := b.AddChild(root, "public")
	priv := b.AddChild(root, "private")
	people := b.AddChild(pub, "people")
	b.AddChild(priv, "people")
	ns := b.Build()

	fmt.Println(ns.Name(people))
	fmt.Println(ns.Lookup("/university/private/people") != terradir.InvalidNode)
	fmt.Println(ns.Distance(people, priv)) // up to /university, down to private
	// Output:
	// /university/public/people
	// true
	// 3
}

// ExampleNewBalancedNamespace builds the paper's synthetic namespace Ns.
func ExampleNewBalancedNamespace() {
	ns := terradir.NewBalancedNamespace(2, 15)
	fmt.Println(ns.Len(), ns.MaxDepth())
	// Output: 32767 14
}

// ExampleNewSimulation runs a small deterministic simulated deployment under
// a shifting hot-spot and reports that the adaptive protocol replicated.
func ExampleNewSimulation() {
	ns := terradir.NewBalancedNamespace(2, 9)
	p := terradir.DefaultSimParams(ns, 16)
	p.Seed = 7
	sim, err := terradir.NewSimulation(p)
	if err != nil {
		panic(err)
	}
	w := terradir.ZipfWorkload(ns, 3, 1.5, 300, 15)
	sim.Run(w, 15)
	sim.Drain(30)

	fmt.Println("completed queries:", sim.Metrics.Completed > 0)
	fmt.Println("replicas created:", sim.TotalReplicas() > 0)
	fmt.Println("drop fraction below 10%:", sim.Metrics.DropFraction() < 0.10)
	// Output:
	// completed queries: true
	// replicas created: true
	// drop fraction below 10%: true
}

// ExampleRunExperiment regenerates the paper's Table 1.
func ExampleRunExperiment() {
	r, err := terradir.RunExperiment("table1", terradir.ReducedScale(0.02, 1))
	if err != nil {
		panic(err)
	}
	for _, row := range r.Rows {
		fmt.Println(row[0])
	}
	// Output:
	// Owned
	// Replicated
	// Neighboring
	// Cached
}
