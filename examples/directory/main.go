// Directory: use TerraDir as an actual distributed directory service —
// annotate nodes with metadata, store application data at the owners, then
// resolve, fetch (the paper's two-step lookup + retrieval, §2.1) and run a
// hierarchical search (complex queries decomposed into lookups, §2.1)
// through a live overlay.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"terradir"
)

func main() {
	// A small org-chart namespace.
	var b terradir.TreeBuilder
	root := b.AddRoot("corp")
	eng := b.AddChild(root, "engineering")
	sales := b.AddChild(root, "sales")
	platform := b.AddChild(eng, "platform")
	apps := b.AddChild(eng, "apps")
	people := []terradir.NodeID{
		b.AddChild(platform, "ada"),
		b.AddChild(platform, "bob"),
		b.AddChild(apps, "cleo"),
		b.AddChild(sales, "dan"),
	}
	ns := b.Build()

	// Build the overlay but store data/meta before traffic flows.
	ov, err := terradir.NewLocalOverlay(ns, terradir.OverlayOptions{Servers: 4, Seed: 8})
	if err != nil {
		log.Fatal(err)
	}
	defer ov.StopAll()

	owners := terradir.AssignOwners(ns, 4, 8) // same seed => same assignment
	records := map[string]string{
		"/corp/engineering/platform/ada": "ada@corp, on-call",
		"/corp/engineering/platform/bob": "bob@corp",
		"/corp/engineering/apps/cleo":    "cleo@corp",
		"/corp/sales/dan":                "dan@corp, quota crushed",
	}
	for _, p := range people {
		name := ns.Name(p)
		owner := ov.Node(int(owners[p]))
		if !owner.StoreData(p, []byte(records[name])) {
			log.Fatalf("store on %s failed", name)
		}
		owner.Peer().SetMeta(p, map[string]string{"kind": "person"})
	}

	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()

	// Two-step retrieval: lookup resolves name -> hosting servers, then the
	// data is fetched from a host (only owners keep data; routing replicas
	// answer lookups but not retrievals — Table 1).
	fmt.Println("two-step retrieval:")
	for _, p := range people {
		name := ns.Name(p)
		res, data, err := ov.Node(0).Get(ctx, p)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-34s hops=%d meta=%v data=%q\n", name, res.Hops, res.Meta.Attrs, data)
	}

	// Hierarchical search: resolve the whole /corp/engineering subtree.
	fmt.Println("\nsearch /corp/engineering (depth <= 2):")
	results, err := ov.Node(3).Search(ctx, "/corp/engineering", 2, 0)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range results {
		fmt.Printf("  depth=%d %-34s hosts=%v\n", r.Depth, r.Name, r.Hosts)
	}
}
