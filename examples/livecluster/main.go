// Livecluster: boot a real multi-process-style TerraDir overlay — eight
// peers, each with its own goroutine event loop, talking TCP over loopback
// with gob-framed protocol messages — then drive a hot-spot through it and
// watch live replication happen on actual sockets.
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	"terradir"
	"terradir/internal/core"
	"terradir/internal/overlay"
)

func main() {
	const servers = 8
	ns := terradir.NewBalancedNamespace(2, 9) // 511 nodes
	owner := terradir.AssignOwners(ns, servers, 5)
	ownerOf := func(nd core.NodeID) core.ServerID { return owner[nd] }
	ownedBy := make([][]core.NodeID, servers)
	for nd, s := range owner {
		ownedBy[s] = append(ownedBy[s], core.NodeID(nd))
	}

	// Bind all listeners first so every peer knows every address.
	addrs := map[core.ServerID]string{}
	transports := make([]*terradir.TCPTransport, servers)
	for i := 0; i < servers; i++ {
		tr, err := overlay.NewTCPTransport(core.ServerID(i), "127.0.0.1:0", addrs)
		if err != nil {
			log.Fatal(err)
		}
		transports[i] = tr
		addrs[core.ServerID(i)] = tr.Addr()
	}
	nodes := make([]*terradir.OverlayNode, servers)
	cfg := terradir.DefaultConfig()
	cfg.ReplicationCooldown = 0.05
	for i := 0; i < servers; i++ {
		n, err := overlay.NewNode(core.ServerID(i), ns, ownedBy[i], ownerOf, terradir.NodeOptions{
			Seed:         uint64(i) + 1,
			Config:       cfg,
			ServiceDelay: time.Millisecond, // give queries real weight
			QueueCap:     256,
		})
		if err != nil {
			log.Fatal(err)
		}
		nodes[i] = n
		overlay.StartTCPNode(n, transports[i])
		fmt.Printf("peer %d listening on %s, owns %d nodes\n", i, transports[i].Addr(), len(ownedBy[i]))
	}
	defer func() {
		for i := range nodes {
			nodes[i].Stop()
			transports[i].Close()
		}
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	// A few ordinary lookups over real TCP.
	fmt.Println("\nordinary lookups over TCP:")
	for i := 0; i < 4; i++ {
		dest := terradir.NodeID((i*127 + 33) % ns.Len())
		res, err := nodes[i%servers].Lookup(ctx, dest)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-24s ok=%v hops=%d hosts=%v %.1fms\n",
			ns.Name(dest), res.OK, res.Hops, res.Hosts, float64(res.Latency)/float64(time.Millisecond))
	}

	// Hammer one node from every peer: the owner's measured load crosses
	// Thigh and it ships replicas of the hot node to colder peers.
	hot := terradir.NodeID(300)
	hotOwner := owner[hot]
	fmt.Printf("\nhammering %s (owned by peer %d) from all peers...\n", ns.Name(hot), hotOwner)
	var wg sync.WaitGroup
	for g := 0; g < servers; g++ {
		if core.ServerID(g) == hotOwner {
			continue
		}
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 250; i++ {
				_, _ = nodes[g].Lookup(ctx, hot)
			}
		}(g)
	}
	wg.Wait()
	time.Sleep(300 * time.Millisecond)

	replicas := 0
	var hosts []core.ServerID
	for i := 0; i < servers; i++ {
		nodes[i].Stop() // stop loops so peer state can be inspected safely
	}
	for i := 0; i < servers; i++ {
		if nodes[i].Peer().HostsReplica(hot) {
			replicas++
			hosts = append(hosts, core.ServerID(i))
		}
	}
	var tot terradir.TransportStats
	for i := 0; i < servers; i++ {
		if st, ok := nodes[i].TransportStats(); ok {
			tot.Enqueued += st.Enqueued
			tot.Sent += st.Sent
			tot.QueueDrops += st.QueueDrops
			tot.Dials += st.Dials
			tot.Redials += st.Redials
		}
	}
	fmt.Printf("\ntransport totals: %d frames enqueued, %d sent, %d queue drops, %d dials (%d redials)\n",
		tot.Enqueued, tot.Sent, tot.QueueDrops, tot.Dials, tot.Redials)

	fmt.Printf("\nlive replication result: %s now has %d soft-state replicas on peers %v\n",
		ns.Name(hot), replicas, hosts)
	if replicas == 0 {
		fmt.Println("(no replicas — try a slower machine or raise the per-query service delay)")
	} else {
		fmt.Println("the routing load of the hot node has been shed onto colder peers — the")
		fmt.Println("same adaptive protocol the simulator evaluates, running on real sockets.")
	}
}
