// Quickstart: build a namespace, start a live in-process TerraDir overlay,
// and resolve a few names through it — the minimal end-to-end tour of the
// public API.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"terradir"
)

func main() {
	// The paper's Fig. 1 namespace, built by hand.
	var b terradir.TreeBuilder
	root := b.AddRoot("university")
	pub := b.AddChild(root, "public")
	priv := b.AddChild(root, "private")
	pubPeople := b.AddChild(pub, "people")
	privPeople := b.AddChild(priv, "people")
	faculty := b.AddChild(pubPeople, "faculty")
	students := b.AddChild(pubPeople, "students")
	staff := b.AddChild(privPeople, "staff")
	privStudents := b.AddChild(privPeople, "students")
	b.AddChild(faculty, "John")
	b.AddChild(students, "Steve")
	b.AddChild(staff, "Ann")
	b.AddChild(privStudents, "Lisa")
	b.AddChild(privStudents, "Mary")
	ns := b.Build()
	fmt.Printf("namespace: %d nodes, depth %d\n", ns.Len(), ns.MaxDepth())

	// A live overlay: four servers, each a goroutine running the protocol.
	ov, err := terradir.NewLocalOverlay(ns, terradir.OverlayOptions{Servers: 4, Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	defer ov.StopAll()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	for _, name := range []string{
		"/university/private/people/students/Mary",
		"/university/public/people/faculty/John",
		"/university/private",
	} {
		// Initiate at server 0 — TerraDir routes up and down the hierarchy,
		// caching the path at every step (§2.4).
		res, err := ov.LookupName(ctx, 0, name)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("lookup %-45s -> ok=%v hops=%d hosts=%v (%.2fms)\n",
			name, res.OK, res.Hops, res.Hosts, float64(res.Latency)/float64(time.Millisecond))
	}

	// The second lookup of the same name uses the cached mapping: 1 hop.
	res, err := ov.LookupName(ctx, 0, "/university/private/people/students/Mary")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("repeat lookup: hops=%d (path-propagation caching at work)\n", res.Hops)
}
