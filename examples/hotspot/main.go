// Hotspot: the paper's headline scenario in miniature — a simulated TerraDir
// deployment is hit with a heavily skewed (Zipf 1.5) query stream whose
// hot-spot shifts instantaneously twice; watch drops spike at each shift and
// the adaptive replication protocol absorb the load within seconds (paper
// §4.2, Figs. 3–4).
package main

import (
	"fmt"
	"log"

	"terradir"
)

func main() {
	ns := terradir.NewBalancedNamespace(2, 12) // 4095 nodes
	const (
		servers  = 100
		rate     = 3000.0 // queries/s, globally
		duration = 60.0   // simulated seconds
	)
	p := terradir.DefaultSimParams(ns, servers)
	sim, err := terradir.NewSimulation(p)
	if err != nil {
		log.Fatal(err)
	}

	// 10 s uniform warmup, then Zipf(1.5) with a fresh random hot-spot
	// every ~17 s: three hot-spot regimes in one run.
	w := terradir.ShiftingHotspotWorkload(ns, 7, 1.5, rate, 10, duration, 3)
	fmt.Printf("running %s: %d servers, %d nodes, λ=%.0f/s, %gs\n",
		w.Name, servers, ns.Len(), rate, duration)
	sim.Run(w, duration)
	sim.Drain(10)

	m := sim.Metrics
	fmt.Printf("\n t   drops/s  replicas-created/s  load(avg)  load(max)\n")
	for t := 0; t < int(duration); t += 2 {
		la, lm := 0.0, 0.0
		if t < len(m.LoadAvg) {
			la, lm = m.LoadAvg[t], m.LoadMax[t]
		}
		bar := ""
		for i := 0; i < int(m.Drops.Sum(t)/5); i++ {
			bar += "#"
		}
		fmt.Printf("%3d  %7.0f  %18.0f  %9.2f  %9.2f  %s\n",
			t, m.Drops.Sum(t), m.Creations.Sum(t), la, lm, bar)
	}
	fmt.Printf("\ntotals: %d completed, %d dropped (%.2f%%), %d replicas created, %d live\n",
		m.Completed, m.DroppedTotal, 100*m.DropFraction(), m.TotalCreations(), sim.TotalReplicas())
	fmt.Println("note the drop spikes at the hot-spot shifts and the recovery after each —")
	fmt.Println("that is the adaptive replication protocol redistributing routing load.")
}
