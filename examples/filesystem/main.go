// Filesystem: run TerraDir over a file-system-shaped namespace (the paper's
// Coda-derived Nc, substituted with a synthetic generator) under Zipf
// demand, then report where in the hierarchy the protocol placed replicas —
// the paper's Fig. 7 view: replication concentrates near the top, where the
// hierarchical bottleneck lives.
package main

import (
	"fmt"
	"log"

	"terradir"
)

func main() {
	ns := terradir.NewFileSystemNamespace(11, 20000)
	fmt.Printf("file-system namespace: %d nodes, depth %d\n", ns.Len(), ns.MaxDepth())
	pops := ns.LevelPopulations()

	const servers = 200
	p := terradir.DefaultSimParams(ns, servers)
	sim, err := terradir.NewSimulation(p)
	if err != nil {
		log.Fatal(err)
	}
	w := terradir.ZipfWorkload(ns, 3, 1.0, 6000, 45)
	fmt.Printf("driving %s at 6000 q/s across %d servers for 45 simulated seconds...\n\n", w.Name, servers)
	sim.Run(w, 45)
	sim.Drain(10)

	m := sim.Metrics
	fmt.Println("level  nodes   replicas-created  avg-per-node")
	for lvl, n := range pops {
		cr := m.CreationsByLevel[lvl]
		fmt.Printf("%5d  %6d  %16d  %12.3f\n", lvl, n, cr, float64(cr)/float64(n))
	}
	fmt.Printf("\ncompleted %d lookups, dropped %.2f%%, mean %.2f hops, mean latency %.0f ms\n",
		m.Completed, 100*m.DropFraction(), m.Hops.Mean(), m.Latency.Mean()*1000)

	// A lookup against the warmed simulator-independent API: resolve one
	// deep file name through a small live overlay over the same namespace.
	deep := terradir.NodeID(ns.Len() - 1)
	fmt.Printf("\nexample name at depth %d: %s\n", ns.Depth(deep), ns.Name(deep))
}
