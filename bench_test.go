// Benchmarks that regenerate every artifact of the paper's evaluation at a
// reduced scale (exp.BenchEnv: 50 servers, rates and durations scaled so the
// whole suite completes in minutes). Each benchmark prints the regenerated
// rows once (-v) via b.Log of the summary line; full tables come from
// cmd/terradir-bench. Run the paper-scale versions with:
//
//	go run ./cmd/terradir-bench -scale 1 -out results/
package terradir_test

import (
	"strings"
	"testing"

	"terradir"
	"terradir/internal/exp"
)

func benchDriver(b *testing.B, id string) {
	b.Helper()
	env := exp.BenchEnv()
	for i := 0; i < b.N; i++ {
		r, err := terradir.RunExperiment(id, env)
		if err != nil {
			b.Fatal(err)
		}
		if len(r.Rows) == 0 {
			b.Fatalf("%s produced no rows", id)
		}
		if i == 0 {
			var sb strings.Builder
			if err := r.WriteTSV(&sb); err != nil {
				b.Fatal(err)
			}
			lines := strings.SplitN(sb.String(), "\n", 4)
			b.Logf("%s: %d rows; %s", id, len(r.Rows), strings.Join(lines[:min(3, len(lines))], " | "))
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// BenchmarkTable1StateMatrix regenerates paper Table 1.
func BenchmarkTable1StateMatrix(b *testing.B) { benchDriver(b, "table1") }

// BenchmarkFig3Drops regenerates paper Fig. 3 (dropped queries over time,
// Ns, five streams).
func BenchmarkFig3Drops(b *testing.B) { benchDriver(b, "fig3") }

// BenchmarkFig4Replicas regenerates paper Fig. 4 (replicas created over
// time, Nc).
func BenchmarkFig4Replicas(b *testing.B) { benchDriver(b, "fig4") }

// BenchmarkFig5Ablation regenerates paper Fig. 5 (B vs BC vs BCR drop
// fractions across ten streams).
func BenchmarkFig5Ablation(b *testing.B) { benchDriver(b, "fig5") }

// BenchmarkFig6Load regenerates paper Fig. 6 (average/maximum server load
// over time at three arrival rates).
func BenchmarkFig6Load(b *testing.B) { benchDriver(b, "fig6") }

// BenchmarkFig7Levels regenerates paper Fig. 7 (average replicas created per
// namespace level).
func BenchmarkFig7Levels(b *testing.B) { benchDriver(b, "fig7") }

// BenchmarkFig8Stabilization regenerates paper Fig. 8 (replicas created per
// minute over long runs).
func BenchmarkFig8Stabilization(b *testing.B) { benchDriver(b, "fig8") }

// BenchmarkFig9Scalability regenerates paper Fig. 9 (latency, replications,
// drops vs system size).
func BenchmarkFig9Scalability(b *testing.B) { benchDriver(b, "fig9") }

// BenchmarkExp10DigestAccuracy regenerates the §4.4 digest-vs-oracle
// accuracy sweep.
func BenchmarkExp10DigestAccuracy(b *testing.B) { benchDriver(b, "e10") }

// BenchmarkExp11ControlOverhead regenerates the §4.2 control-overhead
// measurement.
func BenchmarkExp11ControlOverhead(b *testing.B) { benchDriver(b, "e11") }

// BenchmarkAblationPathCaching regenerates the §2.4 path-propagation
// ablation.
func BenchmarkAblationPathCaching(b *testing.B) { benchDriver(b, "a1") }

// BenchmarkAblationDigests regenerates the §3.6 digest ablation.
func BenchmarkAblationDigests(b *testing.B) { benchDriver(b, "a2") }

// BenchmarkSimulatorThroughput measures raw simulator event throughput on a
// steady mid-utilization deployment (events/sec is the inverse of ns/op
// scaled by the event count, reported via custom metric).
func BenchmarkSimulatorThroughput(b *testing.B) {
	tree := terradir.NewBalancedNamespace(2, 11)
	for i := 0; i < b.N; i++ {
		p := terradir.DefaultSimParams(tree, 64)
		p.Seed = uint64(i) + 1
		sim, err := terradir.NewSimulation(p)
		if err != nil {
			b.Fatal(err)
		}
		w := terradir.UniformWorkload(tree, 7, 800, 20)
		sim.Run(w, 20)
		sim.Drain(5)
		b.ReportMetric(float64(sim.Engine().Processed()), "events/op")
	}
}

// BenchmarkLiveOverlayLookup measures end-to-end lookup latency through the
// live goroutine overlay (in-process transport).
func BenchmarkLiveOverlayLookup(b *testing.B) {
	tree := terradir.NewBalancedNamespace(2, 10)
	ov, err := terradir.NewLocalOverlay(tree, terradir.OverlayOptions{Servers: 16, Seed: 3})
	if err != nil {
		b.Fatal(err)
	}
	defer ov.StopAll()
	ctx := b.Context()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := ov.Lookup(ctx, i%16, terradir.NodeID(i%tree.Len()))
		if err != nil {
			b.Fatal(err)
		}
		if !res.OK {
			b.Fatalf("lookup failed: %+v", res)
		}
	}
}
