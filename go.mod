module terradir

go 1.22
