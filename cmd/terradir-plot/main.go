// Command terradir-plot renders an experiment TSV (from terradir-bench) as
// an ASCII chart in the terminal.
//
//	terradir-plot results/fig3.tsv                 # all numeric series vs first column
//	terradir-plot -x t -y unif,uzipf1.50 results/fig3.tsv
//	terradir-plot -bars -label stream -y BCR results/fig5.tsv
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"terradir/internal/plot"
)

func main() {
	var (
		xCol   = flag.String("x", "", "x-axis column (default: first column)")
		yCols  = flag.String("y", "", "comma-separated series columns (default: all numeric)")
		bars   = flag.Bool("bars", false, "render a horizontal bar chart instead of lines")
		label  = flag.String("label", "", "label column for -bars (default: first column)")
		width  = flag.Int("w", 72, "plot width in characters")
		height = flag.Int("h", 18, "plot height in characters")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: terradir-plot [flags] <file.tsv>")
		os.Exit(2)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	t, err := plot.ReadTSV(f)
	if err != nil {
		fatal(err)
	}
	if *xCol == "" && len(t.Header) > 0 {
		*xCol = t.Header[0]
	}
	var names []string
	if *yCols != "" {
		names = strings.Split(*yCols, ",")
	} else {
		names = t.NumericColumns(*xCol)
	}
	if len(names) == 0 {
		fatal(fmt.Errorf("no numeric series to plot in %s", flag.Arg(0)))
	}

	if *bars {
		lcol := *label
		if lcol == "" {
			lcol = t.Header[0]
		}
		labels, err := t.StringColumn(lcol)
		if err != nil {
			fatal(err)
		}
		vals, err := t.NumericColumn(names[0])
		if err != nil {
			fatal(err)
		}
		if err := plot.Bars(os.Stdout, t.Title+" — "+names[0], labels, vals, *width); err != nil {
			fatal(err)
		}
		return
	}

	xs, err := t.NumericColumn(*xCol)
	if err != nil {
		fatal(err)
	}
	series := map[string][]float64{}
	for _, name := range names {
		vals, err := t.NumericColumn(name)
		if err != nil {
			fatal(err)
		}
		series[name] = vals
	}
	if err := plot.Line(os.Stdout, t.Title, xs, names, series, *width, *height); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "terradir-plot: %v\n", err)
	os.Exit(1)
}
