// Command terradird runs one live TerraDir peer over TCP.
//
// A deployment of N peers shares a deterministic namespace and ownership
// assignment derived from (-namespace, -servers, -seed); every process must
// be launched with identical values plus the full peer address list. Each
// peer additionally serves a line-based client port for lookups (see
// cmd/terradir-cli).
//
// Example 3-node deployment on one machine:
//
//	terradird -id 0 -servers 3 -listen :7100 -client :8100 -peers :7100,:7101,:7102
//	terradird -id 1 -servers 3 -listen :7101 -client :8101 -peers :7100,:7101,:7102
//	terradird -id 2 -servers 3 -listen :7102 -client :8102 -peers :7100,:7101,:7102
//	terradir-cli -addr :8100 /n0/n1/n0
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"terradir"
	"terradir/internal/core"
	"terradir/internal/overlay"
	"terradir/internal/persist"
	"terradir/internal/telemetry"
)

func main() {
	var (
		id       = flag.Int("id", 0, "this peer's server ID (0-based)")
		servers  = flag.Int("servers", 1, "total number of peers in the deployment")
		listen   = flag.String("listen", ":7100", "peer protocol listen address")
		client   = flag.String("client", ":8100", "client (lookup) listen address; empty disables")
		peerList = flag.String("peers", "", "comma-separated peer addresses, index = server ID")
		nsKind   = flag.String("namespace", "balanced:2:10", "namespace spec: 'balanced:<arity>:<levels>' or 'fs:<nodes>'")
		seed     = flag.Uint64("seed", 1, "deployment seed (must match across peers)")
		svcDelay = flag.Duration("service-delay", 0, "artificial per-query processing cost")
		shards   = flag.Int("shards", 1, "event-loop shards per peer (namespace-subtree partitioned; >1 enables multi-core scale-up)")
		ingest   = flag.Int("ingest-batch", 0, "max envelopes a shard loop drains per wakeup (0 = default 64; 1 = strict one-per-wakeup)")

		queueDepth   = flag.Int("queue-depth", 0, "per-peer outbound queue depth (0 = default)")
		dialTimeout  = flag.Duration("dial-timeout", 0, "peer dial timeout (0 = default)")
		writeTimeout = flag.Duration("write-timeout", 0, "per-frame write deadline (0 = default)")
		backoffMax   = flag.Duration("backoff-max", 0, "reconnect backoff cap (0 = default)")

		faultDrop    = flag.Float64("fault-drop", 0, "inject: drop this fraction of outbound messages")
		faultLatency = flag.Duration("fault-latency", 0, "inject: delay every outbound message by this much")

		adminAddr   = flag.String("admin-addr", "", "admin HTTP listen address (/metrics, /debug/vars, /debug/pprof, /trace/<id>); empty disables")
		traceSample = flag.Float64("trace-sample", 1.0, "fraction of lookups initiated here that carry a distributed trace (0 disables)")

		dataDir      = flag.String("data-dir", "", "durability directory: WAL + snapshots of hosted state; empty disables persistence")
		snapInterval = flag.Duration("snapshot-interval", 30*time.Second, "period between hosted-state snapshots (requires -data-dir)")
		walSync      = flag.String("wal-sync", "interval", "WAL fsync policy: always | interval | none")
		cacheEntries = flag.Int("hosted-cache-entries", 0, "cap on resident hosted entries; the rest lives in the on-disk node index (requires -data-dir; 0 = unbounded)")
		cacheBytes   = flag.Int64("hosted-cache-bytes", 0, "cap on resident hosted bytes; the rest lives in the on-disk node index (requires -data-dir; 0 = unbounded)")

		join          = flag.String("join", "", "bootstrap off one live peer's address instead of requiring the full -peers list")
		advertise     = flag.String("advertise", "", "address other peers dial to reach this one (default: the bound listen address; set this when -listen is a wildcard)")
		probeInterval = flag.Duration("probe-interval", 0, "membership probe period (0 = default 250ms)")
		suspicion     = flag.Duration("suspicion-timeout", 0, "suspect-to-dead timeout (0 = 4x probe interval)")
		noMembership  = flag.Bool("no-membership", false, "disable the gossip membership subsystem (static deployment)")
	)
	flag.Parse()

	tree, err := buildNamespace(*nsKind, *seed)
	if err != nil {
		fatal(err)
	}
	// Fail fast on misconfiguration: a bad -id or -peers list would otherwise
	// surface only as silent misrouting at runtime.
	if *servers < 1 {
		fatal(fmt.Errorf("-servers must be >= 1 (got %d)", *servers))
	}
	if *id < 0 || *id >= *servers {
		fatal(fmt.Errorf("-id %d out of range [0,%d) for -servers %d", *id, *servers, *servers))
	}
	addrs := map[core.ServerID]string{}
	if *peerList != "" {
		for i, a := range strings.Split(*peerList, ",") {
			a = strings.TrimSpace(a)
			if a == "" {
				fatal(fmt.Errorf("-peers entry %d is empty", i))
			}
			addrs[core.ServerID(i)] = a
		}
	}
	if *join == "" {
		if len(addrs) == 0 {
			fatal(fmt.Errorf("either -peers (full static list) or -join (bootstrap address) is required"))
		}
		if len(addrs) != *servers {
			fatal(fmt.Errorf("-peers lists %d addresses for -servers %d; every server needs exactly one address", len(addrs), *servers))
		}
	} else if len(addrs) != 0 && len(addrs) != *servers {
		fatal(fmt.Errorf("-peers lists %d addresses for -servers %d (with -join, omit -peers or list all)", len(addrs), *servers))
	}

	owner := terradir.AssignOwners(tree, *servers, *seed)
	var owned []core.NodeID
	for nd, s := range owner {
		if s == core.ServerID(*id) {
			owned = append(owned, core.NodeID(nd))
		}
	}
	ownerOf := func(nd core.NodeID) core.ServerID { return owner[nd] }

	transport, err := overlay.NewTCPTransportOpts(core.ServerID(*id), *listen, addrs,
		terradir.TCPTransportOptions{
			QueueDepth:   *queueDepth,
			DialTimeout:  *dialTimeout,
			WriteTimeout: *writeTimeout,
			BackoffMax:   *backoffMax,
			Seed:         *seed + uint64(*id),
		})
	if err != nil {
		fatal(err)
	}

	sample := *traceSample
	if sample <= 0 {
		sample = -1 // Options treats 0 as "default to 1"; negative disables
	}
	nodeOpts := overlay.Options{
		Seed:         *seed + uint64(*id)*7919,
		ServiceDelay: *svcDelay,
		Shards:       *shards,
		IngestBatch:  *ingest,
		TraceSample:  sample,
	}
	if !*noMembership && (*servers > 1 || *join != "") {
		selfAddr := *advertise
		if selfAddr == "" {
			selfAddr = transport.Addr()
		}
		var peers map[core.ServerID]string
		if *join == "" {
			peers = addrs
		}
		nodeOpts.Membership = &overlay.MembershipOptions{
			Protocol: terradir.MembershipProtocolOptions{
				ProbeInterval:    *probeInterval,
				SuspicionTimeout: *suspicion,
				Seed:             *seed + uint64(*id)*104729 + 1,
			},
			Servers:  *servers,
			SelfAddr: selfAddr,
			Peers:    peers,
			JoinAddr: *join,
		}
	}
	if *dataDir == "" && (*cacheEntries > 0 || *cacheBytes > 0) {
		fatal(fmt.Errorf("-hosted-cache-entries/-hosted-cache-bytes bound the hot cache over the on-disk node index and require -data-dir"))
	}
	if *cacheEntries < 0 || *cacheBytes < 0 {
		fatal(fmt.Errorf("-hosted-cache-entries and -hosted-cache-bytes must be >= 0"))
	}
	if *dataDir != "" {
		// Fail fast on a durability misconfiguration: a peer that silently ran
		// without its WAL would lose state it promised to keep.
		if *snapInterval <= 0 {
			fatal(fmt.Errorf("-snapshot-interval must be > 0 (got %s)", *snapInterval))
		}
		policy, err := persist.ParseSyncPolicy(*walSync)
		if err != nil {
			fatal(err)
		}
		if err := probeWritable(*dataDir); err != nil {
			fatal(fmt.Errorf("-data-dir %s is not writable: %w", *dataDir, err))
		}
		nodeOpts.Persist = &overlay.PersistOptions{
			Dir:              *dataDir,
			SnapshotInterval: *snapInterval,
			SyncPolicy:       policy,
			HotCacheEntries:  *cacheEntries,
			HotCacheBytes:    *cacheBytes,
		}
	}
	node, err := overlay.NewNode(core.ServerID(*id), tree, owned, ownerOf, nodeOpts)
	if err != nil {
		fatal(err)
	}
	if rs := node.ReplayedState(); rs != nil && rs.HasState() {
		if rs.Indexed {
			fmt.Printf("terradird: indexed restart, %d records on disk + %d wal-tail mutations from %s (snapshot seq %d, wal seq %d, incarnation %d)\n",
				rs.IndexedRecords, len(rs.Mutations), *dataDir, rs.SnapshotSeq, rs.LastSeq, rs.Incarnation)
		} else {
			fmt.Printf("terradird: replayed %d hosted records from %s (snapshot seq %d, wal seq %d, incarnation %d)\n",
				len(rs.Mutations), *dataDir, rs.SnapshotSeq, rs.LastSeq, rs.Incarnation)
		}
	}
	var send overlay.Transport = transport
	if *faultDrop > 0 || *faultLatency > 0 {
		send = overlay.NewFaultTransport(transport, terradir.FaultOptions{
			DropProb: *faultDrop,
			Latency:  *faultLatency,
			Seed:     *seed + uint64(*id)*7919,
		})
		fmt.Printf("terradird: FAULT INJECTION on: drop=%.2f latency=%s\n", *faultDrop, *faultLatency)
	}
	overlay.StartTCPNodeVia(node, transport, send)
	if nodeOpts.Membership != nil {
		if *join != "" {
			fmt.Printf("terradird: membership on, joining via %s\n", *join)
		} else {
			fmt.Printf("terradird: membership on (%d static peers)\n", *servers)
		}
	}
	fmt.Printf("terradird: peer %d/%d up on %s; owns %d of %d nodes\n",
		*id, *servers, transport.Addr(), len(owned), tree.Len())

	var admin *telemetry.AdminServer
	if *adminAddr != "" {
		node.Registry().PublishExpvar("terradir")
		admin, err = telemetry.StartAdmin(*adminAddr, node.Registry(), node.Traces())
		if err != nil {
			fatal(err)
		}
		fmt.Printf("terradird: admin endpoint on http://%s (/metrics /debug/vars /debug/pprof/ /traces)\n", admin.Addr())
	}

	var clientLn net.Listener
	if *client != "" {
		clientLn, err = net.Listen("tcp", *client)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("terradird: client port on %s\n", clientLn.Addr())
		go serveClients(clientLn, node, tree)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	fmt.Println("terradird: shutting down")
	if admin != nil {
		admin.Close()
	}
	if clientLn != nil {
		clientLn.Close()
	}
	node.Stop()
	transport.Close()
	dumpMetrics(node.Registry())
}

// dumpMetrics prints the final registry snapshot, one metric per line in
// name order — the shutdown report now comes from the same counter system
// the admin endpoint scrapes, instead of a hand-formatted subset.
func dumpMetrics(reg *telemetry.Registry) {
	snap := reg.Snapshot()
	names := make([]string, 0, len(snap))
	for name, v := range snap {
		if v != 0 {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Printf("terradird: metric %s = %g\n", name, snap[name])
	}
}

func buildNamespace(spec string, seed uint64) (*terradir.Tree, error) {
	switch {
	case strings.HasPrefix(spec, "balanced:"):
		var arity, levels int
		if _, err := fmt.Sscanf(spec, "balanced:%d:%d", &arity, &levels); err != nil {
			return nil, fmt.Errorf("bad namespace spec %q", spec)
		}
		return terradir.NewBalancedNamespace(arity, levels), nil
	case strings.HasPrefix(spec, "fs:"):
		var nodes int
		if _, err := fmt.Sscanf(spec, "fs:%d", &nodes); err != nil {
			return nil, fmt.Errorf("bad namespace spec %q", spec)
		}
		return terradir.NewFileSystemNamespace(seed, nodes), nil
	default:
		return nil, fmt.Errorf("unknown namespace spec %q", spec)
	}
}

// serveClients answers a minimal line protocol:
//
//	LOOKUP <name>\n  ->  OK <hops> <latency_ms> <name> hosts=<ids>\n
//	                 or  ERR <reason>\n
func serveClients(ln net.Listener, node *overlay.Node, tree *terradir.Tree) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		go func(c net.Conn) {
			defer c.Close()
			sc := bufio.NewScanner(c)
			for sc.Scan() {
				line := strings.TrimSpace(sc.Text())
				fields := strings.Fields(line)
				if len(fields) != 2 || strings.ToUpper(fields[0]) != "LOOKUP" {
					fmt.Fprintf(c, "ERR usage: LOOKUP <name>\n")
					continue
				}
				ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
				res, err := node.LookupName(ctx, fields[1])
				cancel()
				switch {
				case err != nil:
					fmt.Fprintf(c, "ERR %v\n", err)
				case !res.OK:
					fmt.Fprintf(c, "ERR lookup failed: %s\n", res.Reason)
				default:
					hosts := make([]string, len(res.Hosts))
					for i, h := range res.Hosts {
						hosts[i] = fmt.Sprintf("%d", h)
					}
					fmt.Fprintf(c, "OK %d %.2f %s hosts=%s\n",
						res.Hops, float64(res.Latency)/float64(time.Millisecond),
						res.Name, strings.Join(hosts, ","))
				}
			}
		}(conn)
	}
}

// probeWritable creates dir if needed and verifies a file can actually be
// written there (permissions, read-only mounts, full disks all surface now
// instead of at the first WAL append).
func probeWritable(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.CreateTemp(dir, ".probe-*")
	if err != nil {
		return err
	}
	name := f.Name()
	_, werr := f.Write([]byte("probe"))
	cerr := f.Close()
	os.Remove(name)
	if werr != nil {
		return werr
	}
	return cerr
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "terradird: %v\n", err)
	os.Exit(1)
}
