package main

import (
	"os"
	"path/filepath"
	"testing"
)

// TestProbeWritable covers the -data-dir fail-fast path: a usable directory
// passes (and is created if missing), while a path that cannot be a
// directory fails before the node ever opens a WAL.
func TestProbeWritable(t *testing.T) {
	fresh := filepath.Join(t.TempDir(), "a", "b")
	if err := probeWritable(fresh); err != nil {
		t.Fatalf("probeWritable(%s) = %v, want nil", fresh, err)
	}
	if fi, err := os.Stat(fresh); err != nil || !fi.IsDir() {
		t.Fatalf("probeWritable did not create %s: %v", fresh, err)
	}
	// Leave no probe files behind.
	entries, err := os.ReadDir(fresh)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("probe left %d files behind in %s", len(entries), fresh)
	}

	// A regular file in the path makes the target impossible to create —
	// the same class of failure as a read-only mount, and one that
	// reproduces regardless of the invoking user's privileges.
	file := filepath.Join(t.TempDir(), "occupied")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := probeWritable(filepath.Join(file, "sub")); err == nil {
		t.Fatal("probeWritable under a regular file succeeded, want error")
	}
}
