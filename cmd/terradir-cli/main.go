// Command terradir-cli issues lookups against a running terradird peer's
// client port.
//
//	terradir-cli -addr 127.0.0.1:8100 /n0/n1/n0 /n1/n1
package main

import (
	"bufio"
	"flag"
	"fmt"
	"net"
	"os"
	"time"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8100", "terradird client address")
	timeout := flag.Duration("timeout", 10*time.Second, "per-lookup timeout")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: terradir-cli [-addr host:port] <name> [<name>...]")
		os.Exit(2)
	}
	conn, err := net.DialTimeout("tcp", *addr, *timeout)
	if err != nil {
		fmt.Fprintf(os.Stderr, "terradir-cli: %v\n", err)
		os.Exit(1)
	}
	defer conn.Close()
	r := bufio.NewReader(conn)
	failed := false
	for _, name := range flag.Args() {
		conn.SetDeadline(time.Now().Add(*timeout))
		if _, err := fmt.Fprintf(conn, "LOOKUP %s\n", name); err != nil {
			fmt.Fprintf(os.Stderr, "terradir-cli: send: %v\n", err)
			os.Exit(1)
		}
		line, err := r.ReadString('\n')
		if err != nil {
			fmt.Fprintf(os.Stderr, "terradir-cli: recv: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(line)
		if len(line) >= 3 && line[:3] == "ERR" {
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}
