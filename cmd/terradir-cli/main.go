// Command terradir-cli issues lookups against a running terradird peer's
// client port, or — with -gw — against a terradir-gw gateway's HTTP surface.
//
//	terradir-cli -addr 127.0.0.1:8100 /n0/n1/n0 /n1/n1
//	terradir-cli -gw http://127.0.0.1:8200 /n0/n1/n0 /n1/n1
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/url"
	"os"
	"strings"
	"time"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8100", "terradird client address")
	gw := flag.String("gw", "", "gateway base URL (e.g. http://127.0.0.1:8200); overrides -addr")
	tenant := flag.String("tenant", "", "X-Tenant header for gateway admission control")
	timeout := flag.Duration("timeout", 10*time.Second, "per-lookup timeout")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: terradir-cli [-addr host:port | -gw http://host:port] <name> [<name>...]")
		os.Exit(2)
	}
	if *gw != "" {
		if gatewayLookups(*gw, *tenant, *timeout, flag.Args()) {
			os.Exit(1)
		}
		return
	}
	conn, err := net.DialTimeout("tcp", *addr, *timeout)
	if err != nil {
		fmt.Fprintf(os.Stderr, "terradir-cli: %v\n", err)
		os.Exit(1)
	}
	defer conn.Close()
	r := bufio.NewReader(conn)
	failed := false
	for _, name := range flag.Args() {
		conn.SetDeadline(time.Now().Add(*timeout))
		if _, err := fmt.Fprintf(conn, "LOOKUP %s\n", name); err != nil {
			fmt.Fprintf(os.Stderr, "terradir-cli: send: %v\n", err)
			os.Exit(1)
		}
		line, err := r.ReadString('\n')
		if err != nil {
			fmt.Fprintf(os.Stderr, "terradir-cli: recv: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(line)
		if len(line) >= 3 && line[:3] == "ERR" {
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}

// gatewayResponse mirrors the gateway's /lookup JSON body.
type gatewayResponse struct {
	Name      string  `json:"name"`
	Node      int64   `json:"node"`
	OK        bool    `json:"ok"`
	Reason    string  `json:"reason"`
	Hops      int     `json:"hops"`
	LatencyMS float64 `json:"latency_ms"`
	Servers   []int32 `json:"servers"`
	Hedged    bool    `json:"hedged"`
	Coalesced bool    `json:"coalesced"`
	Error     string  `json:"error"`
}

// gatewayLookups resolves each name through the gateway's HTTP surface and
// prints one OK/ERR line per name in the terradird text-protocol style.
// Returns true if any lookup failed.
func gatewayLookups(base, tenant string, timeout time.Duration, names []string) bool {
	base = strings.TrimSuffix(base, "/")
	cl := &http.Client{Timeout: timeout}
	failed := false
	for _, name := range names {
		req, err := http.NewRequest("GET", base+"/lookup?name="+url.QueryEscape(name), nil)
		if err != nil {
			fmt.Fprintf(os.Stderr, "terradir-cli: %v\n", err)
			os.Exit(1)
		}
		if tenant != "" {
			req.Header.Set("X-Tenant", tenant)
		}
		resp, err := cl.Do(req)
		if err != nil {
			fmt.Fprintf(os.Stderr, "terradir-cli: %v\n", err)
			os.Exit(1)
		}
		var body gatewayResponse
		decErr := json.NewDecoder(resp.Body).Decode(&body)
		resp.Body.Close()
		switch {
		case resp.StatusCode == http.StatusOK && decErr == nil && body.OK:
			extra := ""
			if body.Hedged {
				extra += " hedged"
			}
			if body.Coalesced {
				extra += " coalesced"
			}
			fmt.Printf("OK %s node=%d hops=%d servers=%v %.2fms%s\n",
				body.Name, body.Node, body.Hops, body.Servers, body.LatencyMS, extra)
		case resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode == http.StatusServiceUnavailable:
			fmt.Printf("ERR %s shed (status %d, retry after %ss)\n",
				name, resp.StatusCode, resp.Header.Get("Retry-After"))
			failed = true
		default:
			msg := body.Error
			if msg == "" && decErr == nil {
				msg = body.Reason
			}
			if msg == "" {
				msg = fmt.Sprintf("status %d", resp.StatusCode)
			}
			fmt.Printf("ERR %s %s\n", name, msg)
			failed = true
		}
	}
	return failed
}
