// Command terradir-sim runs one ad-hoc TerraDir simulation with full
// parameter control and prints a summary plus optional per-second series.
//
// Example — the paper's adaptation scenario:
//
//	terradir-sim -servers 1000 -namespace ns -rate 20000 -alpha 1.0 \
//	             -warmup 60 -duration 250 -shifts 4 -series
package main

import (
	"flag"
	"fmt"
	"os"

	"terradir"
	"terradir/internal/rng"
	"terradir/internal/workload"
)

func main() {
	var (
		servers  = flag.Int("servers", 1000, "number of servers")
		nsKind   = flag.String("namespace", "ns", "namespace: 'ns' (balanced binary), 'nc' (file-system), or 'balanced:<arity>:<levels>'")
		nodes    = flag.Int("nodes", 0, "node count for -namespace nc (default 70000)")
		rate     = flag.Float64("rate", 20000, "global query arrival rate (queries/s)")
		alpha    = flag.Float64("alpha", -1, "Zipf exponent; negative = uniform destinations")
		warmup   = flag.Float64("warmup", 0, "uniform warmup seconds before the Zipf phase")
		duration = flag.Float64("duration", 250, "run length in simulated seconds")
		shifts   = flag.Int("shifts", 1, "number of Zipf popularity segments (hot-spot shifts)")
		seed     = flag.Uint64("seed", 1, "simulation seed")
		frepl    = flag.Float64("frepl", 2, "replication factor Frepl")
		thigh    = flag.Float64("thigh", 0.75, "high-water load threshold")
		noRepl   = flag.Bool("no-replication", false, "disable adaptive replication")
		noCache  = flag.Bool("no-caching", false, "disable caching")
		noDigest = flag.Bool("no-digests", false, "disable inverse-mapping digests")
		series   = flag.Bool("series", false, "print per-second drop/creation/load series")
		record   = flag.String("record", "", "record the generated query stream to this trace file instead of inventing it twice")
		replay   = flag.String("replay", "", "replay a recorded trace file (overrides -rate/-alpha/-warmup/-shifts)")
	)
	flag.Parse()

	var tree *terradir.Tree
	switch {
	case *nsKind == "ns":
		tree = terradir.NewBalancedNamespace(2, 15)
	case *nsKind == "nc":
		n := *nodes
		if n == 0 {
			n = 70000
		}
		tree = terradir.NewFileSystemNamespace(*seed, n)
	default:
		var arity, levels int
		if _, err := fmt.Sscanf(*nsKind, "balanced:%d:%d", &arity, &levels); err != nil {
			fmt.Fprintf(os.Stderr, "terradir-sim: bad -namespace %q\n", *nsKind)
			os.Exit(2)
		}
		tree = terradir.NewBalancedNamespace(arity, levels)
	}

	p := terradir.DefaultSimParams(tree, *servers)
	p.Seed = *seed
	p.Core.ReplFactor = *frepl
	p.Core.Thigh = *thigh
	p.Core.ReplicationEnabled = !*noRepl
	p.Core.CachingEnabled = !*noCache
	p.Core.DigestsEnabled = !*noDigest
	sim, err := terradir.NewSimulation(p)
	if err != nil {
		fmt.Fprintf(os.Stderr, "terradir-sim: %v\n", err)
		os.Exit(1)
	}

	if *replay != "" {
		f, err := os.Open(*replay)
		if err != nil {
			fmt.Fprintf(os.Stderr, "terradir-sim: %v\n", err)
			os.Exit(1)
		}
		tr, err := workload.ReadTrace(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "terradir-sim: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("namespace=%s nodes=%d servers=%d replaying %d trace events over %.0fs\n",
			*nsKind, tree.Len(), *servers, len(tr.Events), tr.Duration())
		sim.RunTrace(tr, 5)
		sim.Drain(30)
	} else {
		var w *terradir.Workload
		switch {
		case *alpha < 0:
			w = terradir.UniformWorkload(tree, *seed+1, *rate, *duration)
		case *warmup > 0:
			w = terradir.ShiftingHotspotWorkload(tree, *seed+1, *alpha, *rate, *warmup, *duration, *shifts)
		default:
			w = terradir.ZipfWorkload(tree, *seed+1, *alpha, *rate, *duration)
		}
		if *record != "" {
			tr := workload.RecordTrace(w, rng.New(*seed+2), *duration)
			f, err := os.Create(*record)
			if err == nil {
				err = workload.WriteTrace(f, tr)
				if cerr := f.Close(); err == nil {
					err = cerr
				}
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "terradir-sim: record: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("recorded %d events to %s; replaying them now\n", len(tr.Events), *record)
			sim.RunTrace(tr, 5)
			sim.Drain(30)
			printSummary(sim, tree)
			return
		}
		fmt.Printf("namespace=%s nodes=%d servers=%d rate=%.0f stream=%s duration=%.0fs\n",
			*nsKind, tree.Len(), *servers, *rate, w.Name, *duration)
		sim.Run(w, *duration)
		sim.Drain(30)
	}

	printSummary(sim, tree)

	if *series {
		m := sim.Metrics
		fmt.Printf("\nt\tdrops\tcreations\tloadavg\tloadmax\n")
		for t := 0; t < int(*duration); t++ {
			la, lm := 0.0, 0.0
			if t < len(m.LoadAvg) {
				la, lm = m.LoadAvg[t], m.LoadMax[t]
			}
			fmt.Printf("%d\t%.0f\t%.0f\t%.3f\t%.3f\n", t, m.Drops.Sum(t), m.Creations.Sum(t), la, lm)
		}
	}
}

func printSummary(sim *terradir.Simulation, tree *terradir.Tree) {
	m := sim.Metrics
	agg := sim.AggregateStats()
	fmt.Printf("\nqueries: injected=%.0f completed=%d dropped=%d (%.4f) failTTL=%d failNoRoute=%d\n",
		m.Injected.Total(), m.Completed, m.DroppedTotal, m.DropFraction(), m.FailedTTL, m.FailedNoRoute)
	fmt.Printf("latency: mean=%.1fms p50=%.1fms p99=%.1fms  hops: mean=%.2f p99=%.0f\n",
		m.Latency.Mean()*1000, m.Latency.Quantile(0.5)*1000, m.Latency.Quantile(0.99)*1000,
		m.Hops.Mean(), m.Hops.Quantile(0.99))
	fmt.Printf("load: mean=%.3f  routing accuracy=%.3f\n", m.MeanLoad(), m.Accuracy())
	fmt.Printf("replication: creations=%d evictions=%d live=%d sessions=%d (ok %d, aborted %d)\n",
		m.TotalCreations(), m.Evictions, sim.TotalReplicas(), agg.SessionsStarted, agg.SessionsOK, agg.SessionsAborted)
	fmt.Printf("messages: query=%d result=%d control=%d (control/query ratio %.5f)\n",
		m.QueryMsgs, m.ResultMsgs, m.ControlMsgs, float64(m.ControlMsgs)/float64(max64(m.QueryMsgs, 1)))
	fmt.Printf("routing mix: context=%d cache=%d digest-shortcuts=%d\n",
		agg.ContextHops, agg.CacheHits, agg.DigestShortcuts)
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
