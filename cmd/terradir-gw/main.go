// Command terradir-gw runs one stateless TerraDir gateway: the edge tier
// that terminates client connections (HTTP/JSON and the binary wire
// protocol) and multiplexes them onto a pool of upstream peers, with
// request coalescing, hedged replica reads, and per-tenant admission
// control.
//
// A gateway shares the deployment's deterministic namespace
// (-namespace/-seed must match the peers) but is not a peer itself: it owns
// nothing, and peers see it only as a reply route.
//
// Example, in front of the 3-node deployment from cmd/terradird:
//
//	terradir-gw -servers 3 -peers :7100,:7101,:7102 -http :8200 -wire :7200
//	curl 'http://localhost:8200/lookup?name=/n0/n1/n0'
//
// SIGTERM drains gracefully: /healthz flips to 503 (load-balancer
// ejection), new requests are refused with Retry-After, in-flight ones
// finish.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"terradir"
	"terradir/internal/core"
	"terradir/internal/gateway"
	"terradir/internal/overlay"
	"terradir/internal/telemetry"
)

func main() {
	var (
		ord      = flag.Int("ord", 0, "gateway client ordinal (distinct per gateway and per wire client in a deployment)")
		servers  = flag.Int("servers", 1, "total number of upstream peers")
		peerList = flag.String("peers", "", "comma-separated peer addresses, index = server ID (required)")
		nsKind   = flag.String("namespace", "balanced:2:10", "namespace spec: 'balanced:<arity>:<levels>' or 'fs:<nodes>' (must match peers)")
		seed     = flag.Uint64("seed", 1, "deployment seed (must match peers)")

		httpAddr = flag.String("http", ":8200", "HTTP/JSON listen address; empty disables")
		wireAddr = flag.String("wire", ":7200", "binary wire-protocol listen address (also the upstream transport)")

		rate  = flag.Float64("rate", 0, "per-tenant admission rate, requests/sec (0 = unlimited)")
		burst = flag.Float64("burst", 0, "per-tenant admission burst (default max(rate,1))")

		hedgeAfter = flag.Duration("hedge-after", 0, "fixed hedge delay (0 = adaptive p99-derived)")
		noHedge    = flag.Bool("no-hedge", false, "disable hedged requests")
		upTimeout  = flag.Duration("upstream-timeout", 0, "per-lookup upstream budget (0 = default 3s)")

		probeInterval = flag.Duration("probe-interval", 0, "upstream liveness probe period (0 = default 500ms)")
		probeTimeout  = flag.Duration("probe-timeout", 0, "per-probe reply deadline (0 = default 250ms)")
		cacheSize     = flag.Int("cache-size", 0, "routing cache entries (0 = default 4096)")
		drainTimeout  = flag.Duration("drain-timeout", 0, "graceful drain budget on SIGTERM (0 = default 5s)")
	)
	flag.Parse()

	tree, err := buildNamespace(*nsKind, *seed)
	if err != nil {
		fatal(err)
	}
	if *servers < 1 {
		fatal(fmt.Errorf("-servers must be >= 1 (got %d)", *servers))
	}
	if *peerList == "" {
		fatal(fmt.Errorf("-peers is required"))
	}
	addrs := map[core.ServerID]string{}
	var peers []core.ServerID
	for i, a := range strings.Split(*peerList, ",") {
		a = strings.TrimSpace(a)
		if a == "" {
			fatal(fmt.Errorf("-peers entry %d is empty", i))
		}
		addrs[core.ServerID(i)] = a
		peers = append(peers, core.ServerID(i))
	}
	if len(peers) != *servers {
		fatal(fmt.Errorf("-peers lists %d addresses for -servers %d", len(peers), *servers))
	}

	self := core.ClientID(*ord)
	transport, err := overlay.NewTCPTransportOpts(self, *wireAddr, addrs,
		terradir.TCPTransportOptions{ClientRole: true, Seed: *seed + uint64(*ord) + 1})
	if err != nil {
		fatal(err)
	}

	// Probe each peer with a node it owns under the deployment's initial
	// assignment, so probe success depends only on that peer being alive
	// (not on the rest of the overlay routing for it).
	owner := terradir.AssignOwners(tree, *servers, *seed)
	probeDest := make(map[core.ServerID]core.NodeID, *servers)
	for nd, s := range owner {
		if _, ok := probeDest[s]; !ok {
			probeDest[s] = core.NodeID(nd)
		}
	}

	hedge := *hedgeAfter
	if *noHedge {
		hedge = -1
	}
	gw, err := gateway.New(gateway.Options{
		Tree:            tree,
		Self:            self,
		Peers:           peers,
		Wire:            transport,
		UpstreamTimeout: *upTimeout,
		HedgeAfter:      hedge,
		ProbeInterval:   *probeInterval,
		ProbeTimeout:    *probeTimeout,
		ProbeDest: func(s core.ServerID) core.NodeID {
			if nd, ok := probeDest[s]; ok {
				return nd
			}
			return tree.Root()
		},
		AdmissionRate:  *rate,
		AdmissionBurst: *burst,
		CacheSize:      *cacheSize,
		DrainTimeout:   *drainTimeout,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("terradir-gw: wire surface + upstream transport on %s (%d peers)\n", transport.Addr(), *servers)
	if *httpAddr != "" {
		bound, err := gw.StartHTTP(*httpAddr)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("terradir-gw: http surface on %s (/lookup /healthz /metrics)\n", bound)
	}
	if *rate > 0 {
		fmt.Printf("terradir-gw: admission control: %.1f req/s per tenant (burst %.0f)\n", *rate, *burst)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	fmt.Println("terradir-gw: draining")
	start := time.Now()
	gw.Drain()
	fmt.Printf("terradir-gw: drained in %s, shutting down\n", time.Since(start).Round(time.Millisecond))
	gw.Close()
	transport.Close()
	dumpMetrics(gw.Registry())
}

func dumpMetrics(reg *telemetry.Registry) {
	snap := reg.Snapshot()
	names := make([]string, 0, len(snap))
	for name, v := range snap {
		if v != 0 {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Printf("terradir-gw: metric %s = %g\n", name, snap[name])
	}
}

func buildNamespace(spec string, seed uint64) (*terradir.Tree, error) {
	switch {
	case strings.HasPrefix(spec, "balanced:"):
		var arity, levels int
		if _, err := fmt.Sscanf(spec, "balanced:%d:%d", &arity, &levels); err != nil {
			return nil, fmt.Errorf("bad namespace spec %q", spec)
		}
		return terradir.NewBalancedNamespace(arity, levels), nil
	case strings.HasPrefix(spec, "fs:"):
		var nodes int
		if _, err := fmt.Sscanf(spec, "fs:%d", &nodes); err != nil {
			return nil, fmt.Errorf("bad namespace spec %q", spec)
		}
		return terradir.NewFileSystemNamespace(seed, nodes), nil
	default:
		return nil, fmt.Errorf("unknown namespace spec %q", spec)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "terradir-gw: %v\n", err)
	os.Exit(1)
}
