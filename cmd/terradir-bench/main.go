// Command terradir-bench regenerates the paper's evaluation artifacts
// (Table 1, Figures 3–9, E10/E11 and the design ablations) and writes each
// as a TSV file.
//
// Usage:
//
//	terradir-bench [-exp fig3,fig5] [-scale 1] [-seed 1] [-out results/]
//
// -scale 1 is the paper's configuration (1000 servers, full namespaces and
// durations; budget tens of minutes). Smaller scales shrink everything
// proportionally (-scale 0.05 finishes in a few minutes).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"terradir"
)

func main() {
	var (
		expList = flag.String("exp", "all", "comma-separated experiment IDs (or 'all'); see -list")
		scale   = flag.Float64("scale", 1.0, "deployment scale: 1 = paper (1000 servers)")
		seed    = flag.Uint64("seed", 1, "simulation seed")
		outDir  = flag.String("out", "results", "output directory for TSV files")
		maxDur  = flag.Float64("maxdur", 0, "cap per-run simulated duration in seconds (0 = no cap)")
		list    = flag.Bool("list", false, "list experiments and exit")

		openloop = flag.Bool("openloop", false, "run the open-loop (coordinated-omission-safe) lookup load harness instead of the paper experiments")
		target   = flag.String("target", "direct", "openloop: 'direct' (in-process cluster) or 'gw' (TCP peers behind a terradir-gw gateway)")
		dist     = flag.String("dist", "unif", "openloop: destination distribution, 'unif' or 'zipf'")
		alpha    = flag.Float64("alpha", 0.9, "openloop: Zipf exponent for -dist zipf")
		servers  = flag.Int("servers", 8, "openloop: servers in the cluster")
		clients  = flag.Int("clients", 64, "openloop: load-generator goroutines")
		shards   = flag.String("shards", "1", "openloop: comma-separated per-server shard counts to sweep")
		rates    = flag.String("rate", "20000", "openloop: comma-separated offered arrival rates (lookups/sec)")
		duration = flag.Duration("duration", 5*time.Second, "openloop: measured duration per run")
		ingest   = flag.Int("ingest-batch", 0, "openloop: max envelopes a shard loop drains per wakeup (0 = default 64; 1 = strict one-per-wakeup)")
	)
	flag.Parse()

	if *openloop {
		shardList, err := parseIntList(*shards)
		if err != nil {
			fmt.Fprintf(os.Stderr, "terradir-bench: -shards: %v\n", err)
			os.Exit(1)
		}
		rateList, err := parseFloatList(*rates)
		if err != nil {
			fmt.Fprintf(os.Stderr, "terradir-bench: -rate: %v\n", err)
			os.Exit(1)
		}
		openLoopMain(*target, *dist, *alpha, *servers, *clients, *ingest, shardList, rateList, *duration, *seed)
		return
	}

	if *list {
		for _, d := range terradir.Experiments() {
			fmt.Printf("%-8s %s\n", d.ID, d.Title)
		}
		return
	}

	ids := map[string]bool{}
	all := *expList == "all"
	if !all {
		for _, id := range strings.Split(*expList, ",") {
			ids[strings.TrimSpace(id)] = true
		}
	}
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		fmt.Fprintf(os.Stderr, "terradir-bench: %v\n", err)
		os.Exit(1)
	}
	env := terradir.ReducedScale(*scale, *seed)
	env.MaxDuration = *maxDur
	ran := 0
	for _, d := range terradir.Experiments() {
		if !all && !ids[d.ID] {
			continue
		}
		ran++
		fmt.Printf("== %s: %s\n", d.ID, d.Title)
		start := time.Now()
		r := d.Run(env)
		path := filepath.Join(*outDir, d.ID+".tsv")
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "terradir-bench: %v\n", err)
			os.Exit(1)
		}
		if err := r.WriteTSV(f); err != nil {
			f.Close()
			fmt.Fprintf(os.Stderr, "terradir-bench: write %s: %v\n", path, err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "terradir-bench: close %s: %v\n", path, err)
			os.Exit(1)
		}
		fmt.Printf("   %d rows -> %s (%.1fs)\n", len(r.Rows), path, time.Since(start).Seconds())
		for _, n := range r.Notes {
			fmt.Printf("   # %s\n", n)
		}
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "terradir-bench: no experiments matched %q (try -list)\n", *expList)
		os.Exit(1)
	}
}

func parseIntList(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func parseFloatList(s string) ([]float64, error) {
	var out []float64
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}
