package main

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"terradir/internal/core"
	"terradir/internal/gateway"
	"terradir/internal/namespace"
	"terradir/internal/overlay"
	"terradir/internal/rng"
	"terradir/internal/workload"
)

// openLoopConfig parameterizes one fixed-arrival-rate run.
type openLoopConfig struct {
	Target      string  // "direct" (in-process LocalCluster) or "gw" (TCP peers behind a gateway)
	Dist        string  // "unif" or "zipf"
	Alpha       float64 // Zipf exponent (ignored for unif)
	Servers     int
	Shards      int
	IngestBatch int     // envelopes a shard loop drains per wakeup (0 = node default)
	Rate        float64 // offered lookups/sec across the whole cluster
	Duration    time.Duration
	Clients     int // worker goroutines sharing the arrival schedule
	Seed        uint64
}

// openLoopResult is the machine-readable outcome of one open-loop run.
type openLoopResult struct {
	Target       string  `json:"target"`
	Dist         string  `json:"dist"`
	Alpha        float64 `json:"alpha,omitempty"`
	Servers      int     `json:"servers"`
	Shards       int     `json:"shards"`
	IngestBatch  int     `json:"ingest_batch,omitempty"`
	OfferedRate  float64 `json:"offered_rate_lps"`
	AchievedRate float64 `json:"achieved_rate_lps"`
	Arrivals     int     `json:"arrivals"`
	Failures     int     `json:"failures"`
	Coalesced    float64 `json:"gw_coalesce_hits,omitempty"`
	Hedged       float64 `json:"gw_hedges_fired,omitempty"`
	// FramesPerRead is the mean frames decoded per read(2) across the peer
	// transports (terradir_transport_frames_per_read); >1 means the batched
	// receive path is amortizing syscalls. Only meaningful for -target gw —
	// the direct target has no sockets.
	FramesPerRead float64 `json:"frames_per_read,omitempty"`
	P50Micros     float64 `json:"p50_us"`
	P90Micros     float64 `json:"p90_us"`
	P99Micros     float64 `json:"p99_us"`
	P999Micros    float64 `json:"p999_us"`
	MaxMicros     float64 `json:"max_us"`
	PeakHeapMB    float64 `json:"peak_heap_mb"`
	PeakRSSMB     float64 `json:"peak_rss_mb,omitempty"`
}

// memSampler tracks the process's peak live heap over a run by polling
// runtime.ReadMemStats, and reads the kernel's resident high-water mark
// (VmHWM) at stop. Capacity-planning numbers for larger-than-RAM hosting:
// the hot-cache caps only matter if the figure they bound is visible.
type memSampler struct {
	stop chan struct{}
	done chan struct{}
	peak uint64
}

func startMemSampler() *memSampler {
	m := &memSampler{stop: make(chan struct{}), done: make(chan struct{})}
	go func() {
		defer close(m.done)
		var ms runtime.MemStats
		tick := time.NewTicker(50 * time.Millisecond)
		defer tick.Stop()
		for {
			runtime.ReadMemStats(&ms)
			if ms.HeapAlloc > m.peak {
				m.peak = ms.HeapAlloc
			}
			select {
			case <-m.stop:
				return
			case <-tick.C:
			}
		}
	}()
	return m
}

// finish stops the sampler and returns (peak heap MB, peak RSS MB). RSS is 0
// on platforms without /proc/self/status.
func (m *memSampler) finish() (heapMB, rssMB float64) {
	close(m.stop)
	<-m.done
	return float64(m.peak) / (1 << 20), readVmHWMKB() / 1024
}

// readVmHWMKB returns the process's peak resident set in KiB per
// /proc/self/status, or 0 when unavailable.
func readVmHWMKB() float64 {
	f, err := os.Open("/proc/self/status")
	if err != nil {
		return 0
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "VmHWM:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return 0
		}
		kb, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			return 0
		}
		return kb
	}
	return 0
}

// genDests pre-generates the destination stream from the shared
// internal/workload generator (the same Zipf/uniform machinery the paper
// experiments use — one source of truth for popularity laws). Workload is
// stateful and single-threaded, so destinations are drawn up front and the
// load workers index into the array.
func genDests(cfg openLoopConfig, n, total int, interval time.Duration) ([]core.NodeID, error) {
	var w *workload.Workload
	src := rng.New(cfg.Seed + 7)
	switch cfg.Dist {
	case "", "unif":
		w = workload.Unif(n, src, cfg.Rate, cfg.Duration.Seconds())
	case "zipf":
		w = workload.UZipf(n, src, cfg.Alpha, cfg.Rate, cfg.Duration.Seconds())
	default:
		return nil, fmt.Errorf("unknown -dist %q (want unif or zipf)", cfg.Dist)
	}
	dests := make([]core.NodeID, total)
	for i := range dests {
		dests[i] = core.NodeID(w.Dest(float64(i) * interval.Seconds()))
	}
	return dests, nil
}

// runOpenLoop drives the target at a fixed arrival rate and measures each
// lookup's latency from its SCHEDULED start, not its actual issue time — the
// coordinated-omission-safe convention. A closed loop (issue, wait, repeat)
// lets a slow server throttle its own load generator, hiding queueing delay
// exactly when the system saturates; here late lookups charge their full
// schedule slip to the percentiles instead.
func runOpenLoop(cfg openLoopConfig) (openLoopResult, error) {
	tree := namespace.NewBalanced(2, 8)
	total := int(cfg.Rate * cfg.Duration.Seconds())
	interval := time.Duration(float64(time.Second) / cfg.Rate)
	dests, err := genDests(cfg, tree.Len(), total, interval)
	if err != nil {
		return openLoopResult{}, err
	}

	// lookup resolves arrival i; warm primes steady-state routing caches.
	var lookup func(ctx context.Context, i int, dest core.NodeID) error
	var teardown func()
	var gwStats func(r *openLoopResult)
	switch cfg.Target {
	case "", "direct":
		c, err := newDirectTarget(tree, cfg)
		if err != nil {
			return openLoopResult{}, err
		}
		teardown = c.StopAll
		lookup = func(ctx context.Context, i int, dest core.NodeID) error {
			res, err := c.Lookup(ctx, i%cfg.Servers, dest)
			if err != nil {
				return err
			}
			if !res.OK {
				return fmt.Errorf("lookup failed: %s", res.Reason)
			}
			return nil
		}
	case "gw":
		gw, framesPerRead, stop, err := newGatewayTarget(tree, cfg)
		if err != nil {
			return openLoopResult{}, err
		}
		teardown = stop
		lookup = func(ctx context.Context, _ int, dest core.NodeID) error {
			res, err := gw.Lookup(ctx, dest)
			if err != nil {
				return err
			}
			if !res.OK {
				return fmt.Errorf("lookup failed: %s", res.Reason)
			}
			return nil
		}
		gwStats = func(r *openLoopResult) {
			snap := gw.Registry().Snapshot()
			r.Coalesced = snap["terradir_gw_coalesce_hits_total"]
			r.Hedged = snap["terradir_gw_hedge_fired_total"]
			r.FramesPerRead = framesPerRead()
		}
	default:
		return openLoopResult{}, fmt.Errorf("unknown -target %q (want direct or gw)", cfg.Target)
	}
	defer teardown()

	ctx := context.Background()
	n := tree.Len()
	// Warm path-propagation caches so the run measures steady-state routing.
	for i := 0; i < 2*n; i++ {
		if err := lookup(ctx, i, core.NodeID((i*7919+3)%n)); err != nil {
			return openLoopResult{}, err
		}
	}

	latencies := make([]time.Duration, total)
	var failures atomic.Int64

	mem := startMemSampler()
	start := time.Now().Add(50 * time.Millisecond) // let workers reach their first sleep
	var wg sync.WaitGroup
	for w := 0; w < cfg.Clients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Stride partitioning: worker w owns arrivals w, w+C, w+2C, ...
			// so the aggregate schedule is the fixed-rate arrival process and
			// no worker ever waits on another's lookup.
			for i := w; i < total; i += cfg.Clients {
				due := start.Add(time.Duration(i) * interval)
				if d := time.Until(due); d > 0 {
					time.Sleep(d)
				}
				if err := lookup(ctx, i, dests[i]); err != nil {
					failures.Add(1)
				}
				latencies[i] = time.Since(due)
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	peakHeapMB, peakRSSMB := mem.finish()

	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	pct := func(p float64) float64 {
		idx := int(p * float64(total-1))
		return float64(latencies[idx]) / float64(time.Microsecond)
	}
	dist := cfg.Dist
	if dist == "" {
		dist = "unif"
	}
	target := cfg.Target
	if target == "" {
		target = "direct"
	}
	r := openLoopResult{
		Target:       target,
		Dist:         dist,
		Alpha:        cfg.Alpha,
		Servers:      cfg.Servers,
		Shards:       cfg.Shards,
		IngestBatch:  cfg.IngestBatch,
		OfferedRate:  cfg.Rate,
		AchievedRate: float64(total) / elapsed.Seconds(),
		Arrivals:     total,
		Failures:     int(failures.Load()),
		P50Micros:    pct(0.50),
		P90Micros:    pct(0.90),
		P99Micros:    pct(0.99),
		P999Micros:   pct(0.999),
		MaxMicros:    float64(latencies[total-1]) / float64(time.Microsecond),
		PeakHeapMB:   peakHeapMB,
		PeakRSSMB:    peakRSSMB,
	}
	if dist == "unif" {
		r.Alpha = 0
	}
	if gwStats != nil {
		gwStats(&r)
	}
	return r, nil
}

// newDirectTarget boots the in-process LocalCluster (function-call
// transport, no sockets).
func newDirectTarget(tree *namespace.Tree, cfg openLoopConfig) (*overlay.LocalCluster, error) {
	opts := overlay.LocalClusterOptions{Servers: cfg.Servers, Seed: cfg.Seed}
	opts.Node.Shards = cfg.Shards
	opts.Node.IngestBatch = cfg.IngestBatch
	return overlay.NewLocalCluster(tree, opts)
}

// newGatewayTarget boots cfg.Servers real TCP peers on loopback and one
// gateway in front of them; lookups traverse two TCP hops (client→gateway is
// in-process here, gateway→peer and the peer overlay are real sockets). The
// second return value reports the mean frames decoded per read(2) across the
// peer transports so far.
func newGatewayTarget(tree *namespace.Tree, cfg openLoopConfig) (*gateway.Gateway, func() float64, func(), error) {
	owner := overlay.Assign(tree, cfg.Servers, cfg.Seed)
	ownerOf := func(nd core.NodeID) core.ServerID { return owner[nd] }
	ownedBy := make([][]core.NodeID, cfg.Servers)
	for nd, s := range owner {
		ownedBy[s] = append(ownedBy[s], core.NodeID(nd))
	}
	trs := make([]*overlay.TCPTransport, cfg.Servers)
	nodes := make([]*overlay.Node, cfg.Servers)
	addrs := map[core.ServerID]string{}
	var peers []core.ServerID
	stop := func() {
		for i := range nodes {
			if nodes[i] != nil {
				nodes[i].Stop()
			}
			if trs[i] != nil {
				trs[i].Close()
			}
		}
	}
	for i := 0; i < cfg.Servers; i++ {
		tr, err := overlay.NewTCPTransportOpts(core.ServerID(i), "127.0.0.1:0",
			map[core.ServerID]string{}, overlay.TCPTransportOptions{Seed: cfg.Seed + uint64(i)})
		if err != nil {
			stop()
			return nil, nil, nil, err
		}
		trs[i] = tr
		addrs[core.ServerID(i)] = tr.Addr()
		peers = append(peers, core.ServerID(i))
	}
	for i := 0; i < cfg.Servers; i++ {
		for j := 0; j < cfg.Servers; j++ {
			trs[i].SetAddr(core.ServerID(j), addrs[core.ServerID(j)])
		}
		nd, err := overlay.NewNode(core.ServerID(i), tree, ownedBy[i], ownerOf,
			overlay.Options{Seed: cfg.Seed + uint64(i), Shards: cfg.Shards, IngestBatch: cfg.IngestBatch})
		if err != nil {
			stop()
			return nil, nil, nil, err
		}
		nodes[i] = nd
		overlay.StartTCPNode(nd, trs[i])
	}
	gwTr, err := overlay.NewTCPTransportOpts(core.ClientID(0), "127.0.0.1:0", addrs,
		overlay.TCPTransportOptions{ClientRole: true, Seed: cfg.Seed + 1000})
	if err != nil {
		stop()
		return nil, nil, nil, err
	}
	probeDest := make(map[core.ServerID]core.NodeID, cfg.Servers)
	for nd, s := range owner {
		if _, ok := probeDest[s]; !ok {
			probeDest[s] = core.NodeID(nd)
		}
	}
	gw, err := gateway.New(gateway.Options{
		Tree:  tree,
		Self:  core.ClientID(0),
		Peers: peers,
		Wire:  gwTr,
		ProbeDest: func(s core.ServerID) core.NodeID {
			if nd, ok := probeDest[s]; ok {
				return nd
			}
			return tree.Root()
		},
	})
	if err != nil {
		gwTr.Close()
		stop()
		return nil, nil, nil, err
	}
	framesPerRead := func() float64 {
		var sum, count float64
		for _, nd := range nodes {
			if nd == nil {
				continue
			}
			for k, v := range nd.Registry().Snapshot() {
				if strings.HasPrefix(k, "terradir_transport_frames_per_read_sum") {
					sum += v
				} else if strings.HasPrefix(k, "terradir_transport_frames_per_read_count") {
					count += v
				}
			}
		}
		if count == 0 {
			return 0
		}
		return sum / count
	}
	return gw, framesPerRead, func() {
		gw.Close()
		gwTr.Close()
		stop()
	}, nil
}

// openLoopMain is the -openloop entry point: run the configured sweep and
// print one JSON object per line (shard count × rate).
func openLoopMain(target, dist string, alpha float64, servers, clients, ingestBatch int, shardList []int, rates []float64, dur time.Duration, seed uint64) {
	enc := json.NewEncoder(os.Stdout)
	for _, shards := range shardList {
		for _, rate := range rates {
			cfg := openLoopConfig{
				Target:      target,
				Dist:        dist,
				Alpha:       alpha,
				Servers:     servers,
				Shards:      shards,
				IngestBatch: ingestBatch,
				Rate:        rate,
				Duration:    dur,
				Clients:     clients,
				Seed:        seed,
			}
			r, err := runOpenLoop(cfg)
			if err != nil {
				fmt.Fprintf(os.Stderr, "terradir-bench: openloop target=%s shards=%d rate=%g: %v\n", target, shards, rate, err)
				os.Exit(1)
			}
			enc.Encode(r)
		}
	}
}
