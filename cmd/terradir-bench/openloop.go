package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"terradir/internal/core"
	"terradir/internal/namespace"
	"terradir/internal/overlay"
)

// openLoopConfig parameterizes one fixed-arrival-rate run against an
// in-process LocalCluster.
type openLoopConfig struct {
	Servers  int
	Shards   int
	Rate     float64 // offered lookups/sec across the whole cluster
	Duration time.Duration
	Clients  int // worker goroutines sharing the arrival schedule
	Seed     uint64
}

// openLoopResult is the machine-readable outcome of one open-loop run.
type openLoopResult struct {
	Servers      int     `json:"servers"`
	Shards       int     `json:"shards"`
	OfferedRate  float64 `json:"offered_rate_lps"`
	AchievedRate float64 `json:"achieved_rate_lps"`
	Arrivals     int     `json:"arrivals"`
	Failures     int     `json:"failures"`
	P50Micros    float64 `json:"p50_us"`
	P90Micros    float64 `json:"p90_us"`
	P99Micros    float64 `json:"p99_us"`
	P999Micros   float64 `json:"p999_us"`
	MaxMicros    float64 `json:"max_us"`
}

// runOpenLoop drives the cluster at a fixed arrival rate and measures each
// lookup's latency from its SCHEDULED start, not its actual issue time — the
// coordinated-omission-safe convention. A closed loop (issue, wait, repeat)
// lets a slow server throttle its own load generator, hiding queueing delay
// exactly when the system saturates; here late lookups charge their full
// schedule slip to the percentiles instead.
func runOpenLoop(cfg openLoopConfig) (openLoopResult, error) {
	tree := namespace.NewBalanced(2, 8)
	opts := overlay.LocalClusterOptions{Servers: cfg.Servers, Seed: cfg.Seed}
	opts.Node.Shards = cfg.Shards
	c, err := overlay.NewLocalCluster(tree, opts)
	if err != nil {
		return openLoopResult{}, err
	}
	defer c.StopAll()

	ctx := context.Background()
	n := tree.Len()
	// Warm path-propagation caches so the run measures steady-state routing.
	for i := 0; i < 2*n; i++ {
		if _, err := c.Lookup(ctx, i%cfg.Servers, core.NodeID((i*7919+3)%n)); err != nil {
			return openLoopResult{}, err
		}
	}

	total := int(cfg.Rate * cfg.Duration.Seconds())
	interval := time.Duration(float64(time.Second) / cfg.Rate)
	latencies := make([]time.Duration, total)
	var failures atomic.Int64

	start := time.Now().Add(50 * time.Millisecond) // let workers reach their first sleep
	var wg sync.WaitGroup
	for w := 0; w < cfg.Clients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Stride partitioning: worker w owns arrivals w, w+C, w+2C, ...
			// so the aggregate schedule is the fixed-rate arrival process and
			// no worker ever waits on another's lookup.
			for i := w; i < total; i += cfg.Clients {
				due := start.Add(time.Duration(i) * interval)
				if d := time.Until(due); d > 0 {
					time.Sleep(d)
				}
				res, err := c.Lookup(ctx, i%cfg.Servers, core.NodeID((i*104729+1)%n))
				if err != nil || !res.OK {
					failures.Add(1)
				}
				latencies[i] = time.Since(due)
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	pct := func(p float64) float64 {
		idx := int(p * float64(total-1))
		return float64(latencies[idx]) / float64(time.Microsecond)
	}
	return openLoopResult{
		Servers:      cfg.Servers,
		Shards:       cfg.Shards,
		OfferedRate:  cfg.Rate,
		AchievedRate: float64(total) / elapsed.Seconds(),
		Arrivals:     total,
		Failures:     int(failures.Load()),
		P50Micros:    pct(0.50),
		P90Micros:    pct(0.90),
		P99Micros:    pct(0.99),
		P999Micros:   pct(0.999),
		MaxMicros:    float64(latencies[total-1]) / float64(time.Microsecond),
	}, nil
}

// openLoopMain is the -openloop entry point: run the configured sweep and
// print one JSON object per line (shard count × rate).
func openLoopMain(servers, clients int, shardList []int, rates []float64, dur time.Duration, seed uint64) {
	enc := json.NewEncoder(os.Stdout)
	for _, shards := range shardList {
		for _, rate := range rates {
			cfg := openLoopConfig{
				Servers:  servers,
				Shards:   shards,
				Rate:     rate,
				Duration: dur,
				Clients:  clients,
				Seed:     seed,
			}
			r, err := runOpenLoop(cfg)
			if err != nil {
				fmt.Fprintf(os.Stderr, "terradir-bench: openloop shards=%d rate=%g: %v\n", shards, rate, err)
				os.Exit(1)
			}
			enc.Encode(r)
		}
	}
}
