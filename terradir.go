// Package terradir is a Go implementation of TerraDir's hierarchical
// peer-to-peer lookup service with adaptive soft-state replication of
// routing state (Silaghi, Gopalakrishnan, Bhattacharjee, Keleher:
// "Hierarchical Routing with Soft-State Replicas in TerraDir", IPPS 2004).
//
// The package offers three ways to run the protocol:
//
//   - Simulation: a deterministic discrete-event simulator with the paper's
//     queueing model (NewSimulation), used by the experiment drivers that
//     regenerate every figure of the paper's evaluation (Experiments,
//     RunExperiment).
//   - Live local overlay: one goroutine per server over in-process
//     transport (NewLocalOverlay) — the same protocol state machine, run
//     for real.
//   - Live TCP overlay: nodes in separate processes over length-prefixed
//     gob frames (see cmd/terradird and the overlay package building
//     blocks re-exported here).
//
// Quickstart:
//
//	ns := terradir.NewBalancedNamespace(2, 10)          // 1023-node tree
//	ov, _ := terradir.NewLocalOverlay(ns, terradir.OverlayOptions{Servers: 8})
//	defer ov.StopAll()
//	res, _ := ov.LookupName(ctx, 0, ns.Name(500))
//	fmt.Println(res.Name, res.Hosts)
package terradir

import (
	"fmt"

	"terradir/internal/cluster"
	"terradir/internal/core"
	"terradir/internal/exp"
	"terradir/internal/membership"
	"terradir/internal/namespace"
	"terradir/internal/overlay"
	"terradir/internal/persist"
	"terradir/internal/rng"
	"terradir/internal/telemetry"
	"terradir/internal/workload"
)

// Namespace types.
type (
	// Tree is an immutable hierarchical namespace (rooted tree of fully
	// qualified names).
	Tree = namespace.Tree
	// NodeID identifies a namespace node.
	NodeID = namespace.NodeID
	// TreeBuilder incrementally constructs a Tree.
	TreeBuilder = namespace.Builder
)

// InvalidNode is the sentinel for "no node".
const InvalidNode = namespace.Invalid

// Protocol types.
type (
	// Config holds every protocol constant (thresholds, Frepl, Msize, cache
	// and digest sizing, feature switches).
	Config = core.Config
	// ServerID identifies a participating server.
	ServerID = core.ServerID
	// Meta is application-supplied node metadata.
	Meta = core.Meta
	// Peer is the transport-agnostic protocol state machine.
	Peer = core.Peer
)

// DefaultConfig returns the paper's protocol configuration.
func DefaultConfig() Config { return core.DefaultConfig() }

// NewBalancedNamespace builds a perfectly balanced tree namespace (the
// paper's synthetic namespace Ns is NewBalancedNamespace(2, 15): 32,767
// nodes).
func NewBalancedNamespace(arity, levels int) *Tree {
	return namespace.NewBalanced(arity, levels)
}

// NewFileSystemNamespace builds a synthetic file-system-shaped namespace of
// approximately targetNodes nodes (the stand-in for the paper's Coda-trace
// namespace Nc; see DESIGN.md §2).
func NewFileSystemNamespace(seed uint64, targetNodes int) *Tree {
	p := namespace.DefaultFileSystemParams()
	if targetNodes > 0 {
		p.TargetNodes = targetNodes
	}
	return namespace.BuildFileSystem(rng.New(seed), p)
}

// ParseNamespace builds a namespace from parallel parent/label arrays
// (parents[0] must be -1; parents[i] < i).
func ParseNamespace(parents []int32, labels []string) (*Tree, error) {
	return namespace.NewFromParents(parents, labels)
}

// Simulation types.
type (
	// Simulation is a deterministic simulated TerraDir deployment.
	Simulation = cluster.Cluster
	// SimParams configures a Simulation.
	SimParams = cluster.Params
	// SimMetrics aggregates everything the experiments measure.
	SimMetrics = cluster.Metrics
	// Workload is a composed query stream (uniform / Zipf phases with
	// popularity-shift events).
	Workload = workload.Workload
)

// DefaultSimParams returns the paper's simulation methodology constants for
// the given namespace and server count.
func DefaultSimParams(tree *Tree, servers int) SimParams {
	return cluster.DefaultParams(tree, servers)
}

// NewSimulation builds a simulated deployment.
func NewSimulation(p SimParams) (*Simulation, error) { return cluster.New(p) }

// UniformWorkload builds the paper's "unif" stream: uniformly random
// destinations at the given global rate for duration seconds.
func UniformWorkload(tree *Tree, seed uint64, rate, duration float64) *Workload {
	return workload.Unif(tree.Len(), rng.New(seed), rate, duration)
}

// ZipfWorkload builds a "uzipf<alpha>" stream over a random popularity
// ranking.
func ZipfWorkload(tree *Tree, seed uint64, alpha, rate, duration float64) *Workload {
	return workload.UZipf(tree.Len(), rng.New(seed), alpha, rate, duration)
}

// ShiftingHotspotWorkload builds the paper's composed adaptation stream: a
// uniform warmup followed by k Zipf(alpha) segments, each with a fresh
// random popularity ranking (instantaneous hot-spot shifts).
func ShiftingHotspotWorkload(tree *Tree, seed uint64, alpha, rate, warmup, total float64, k int) *Workload {
	return workload.UnifThenZipfShifts(tree.Len(), rng.New(seed), alpha, rate, warmup, total, k)
}

// Overlay types.
type (
	// Overlay is a live in-process deployment: one goroutine per server.
	Overlay = overlay.LocalCluster
	// OverlayNode is one live server.
	OverlayNode = overlay.Node
	// NodeOptions configures a live node.
	NodeOptions = overlay.Options
	// LookupResult is a client-facing lookup outcome.
	LookupResult = overlay.LookupResult
	// TCPTransport carries protocol messages between processes over
	// per-peer asynchronous outbound queues with reconnect/backoff.
	TCPTransport = overlay.TCPTransport
	// TCPTransportOptions tunes the TCP transport (per-peer queue depth,
	// dial/write timeouts, reconnect backoff); zero values mean defaults.
	TCPTransportOptions = overlay.TCPTransportOptions
	// TransportStats is a monitoring snapshot of transport counters
	// (sends, drops, redials, corrupt frames, ...).
	TransportStats = overlay.TransportStats
	// FaultTransport wraps any transport with deterministic fault
	// injection: crashed peers, asymmetric partitions, probabilistic drops
	// and added latency.
	FaultTransport = overlay.FaultTransport
	// FaultOptions configures a FaultTransport.
	FaultOptions = overlay.FaultOptions
)

// Membership types: the dynamic-membership subsystem (SWIM-style gossip
// failure detection, versioned ownership handoff, join/warmup).
type (
	// Membership is a running gossip failure detector.
	Membership = membership.Service
	// MembershipProtocolOptions tunes the probe/suspicion cycle (probe
	// interval and timeout, indirect probe fan-out, suspicion timeout,
	// piggyback budget); zero values mean defaults.
	MembershipProtocolOptions = membership.Options
	// MembershipOptions enables the membership subsystem on a live node.
	MembershipOptions = overlay.MembershipOptions
	// MemberState is a member's liveness state (Alive, Suspect, Dead).
	MemberState = membership.State
	// Member is one row of the membership table.
	Member = membership.Member
	// MembershipEvent reports a member's state transition.
	MembershipEvent = membership.Event
	// OwnershipTable maps namespace nodes to their current effective owner,
	// re-pointing each dead owner's partition at its ring successor.
	OwnershipTable = membership.OwnershipTable
)

// Persistence types: the durability tier (WAL + snapshots of hosted state,
// fast restart, delta-only rejoin; DESIGN.md §13).
type (
	// PersistOptions enables the durability tier on a live node.
	PersistOptions = overlay.PersistOptions
	// PersistStore is an open WAL + snapshot store.
	PersistStore = persist.Store
	// PersistReplayState is what a restart recovered from disk.
	PersistReplayState = persist.ReplayState
	// WALSyncPolicy picks the WAL fsync discipline.
	WALSyncPolicy = persist.SyncPolicy
)

// WAL fsync policies.
const (
	WALSyncInterval = persist.SyncInterval
	WALSyncAlways   = persist.SyncAlways
	WALSyncNone     = persist.SyncNone
)

// Member liveness states.
const (
	MemberAlive   = membership.Alive
	MemberSuspect = membership.Suspect
	MemberDead    = membership.Dead
)

// Telemetry types: the observability subsystem of the live overlay (metrics
// registry, per-lookup hop tracing, admin HTTP endpoint).
type (
	// Registry is a concurrency-safe metrics registry: counters, gauges and
	// streaming histograms, exportable as Prometheus text and expvar.
	Registry = telemetry.Registry
	// HistogramOpts fixes a streaming histogram's log-spaced bucket layout.
	HistogramOpts = telemetry.HistogramOpts
	// Span is one hop's record in a per-lookup distributed trace.
	Span = telemetry.Span
	// HopReason classifies why a traced hop forwarded (parent/child context,
	// cached pointer, digest shortcut) or terminated (resolve, fail).
	HopReason = telemetry.HopReason
	// TraceRecord is the assembled state of one lookup trace.
	TraceRecord = telemetry.TraceRecord
	// TraceStore collects lookup traces at the initiating server, including
	// truncated traces of queries lost mid-route.
	TraceStore = telemetry.TraceStore
	// AdminServer is a running admin HTTP listener (/metrics, /debug/vars,
	// /debug/pprof, /trace/<id>).
	AdminServer = telemetry.AdminServer
)

// NewRegistry creates an empty metrics registry.
func NewRegistry() *Registry { return telemetry.NewRegistry() }

// StartAdmin serves a registry and trace store over HTTP on addr (traces may
// be nil). Close the returned server to stop it.
func StartAdmin(addr string, reg *Registry, traces *TraceStore) (*AdminServer, error) {
	return telemetry.StartAdmin(addr, reg, traces)
}

// OverlayOptions configures NewLocalOverlay.
type OverlayOptions struct {
	// Servers is the number of live peers (required).
	Servers int
	// Seed fixes ownership assignment and per-node RNG streams.
	Seed uint64
	// Node tunes each peer (protocol config, queue bound, service delay).
	Node NodeOptions
	// Fault, when non-nil, wraps the overlay's transport in a
	// FaultTransport with these options; retrieve it with Overlay.Fault to
	// crash peers or partition the deployment at runtime.
	Fault *FaultOptions
	// Membership, when non-nil, runs the gossip membership subsystem on
	// every peer with these protocol options. Combine with Fault to watch
	// failure detection and ownership handoff in-process.
	Membership *MembershipProtocolOptions
}

// NewLocalOverlay builds and starts a live in-process overlay over the
// namespace. Stop it with StopAll.
func NewLocalOverlay(tree *Tree, opts OverlayOptions) (*Overlay, error) {
	if tree == nil {
		return nil, fmt.Errorf("terradir: nil namespace")
	}
	return overlay.NewLocalCluster(tree, overlay.LocalClusterOptions{
		Servers:    opts.Servers,
		Seed:       opts.Seed,
		Node:       opts.Node,
		Fault:      opts.Fault,
		Membership: opts.Membership,
	})
}

// AssignOwners deterministically maps namespace nodes to servers; all
// processes of a TCP deployment must use the same (tree, servers, seed).
func AssignOwners(tree *Tree, servers int, seed uint64) []ServerID {
	return overlay.Assign(tree, servers, seed)
}

// Experiment types.
type (
	// Experiment is a registered reproduction driver (one per paper
	// figure/table).
	Experiment = exp.Driver
	// ExperimentEnv fixes scale and seed for a driver run.
	ExperimentEnv = exp.Env
	// ExperimentResult is a regenerated table/series.
	ExperimentResult = exp.Result
)

// Experiments lists every registered reproduction driver (Table 1,
// Figures 3–9, E10/E11, ablations).
func Experiments() []Experiment { return exp.Drivers() }

// RunExperiment regenerates one paper artifact by ID ("fig3", "table1", ...)
// at the given environment. See exp.DefaultEnv (paper scale) and
// exp.BenchEnv (reduced).
func RunExperiment(id string, env ExperimentEnv) (*ExperimentResult, error) {
	d, ok := exp.Lookup(id)
	if !ok {
		return nil, fmt.Errorf("terradir: unknown experiment %q", id)
	}
	return d.Run(env), nil
}

// PaperScale returns the paper-scale experiment environment.
func PaperScale() ExperimentEnv { return exp.DefaultEnv() }

// ReducedScale returns a reduced experiment environment (fraction of the
// paper's 1000 servers; rates and durations scale with it).
func ReducedScale(scale float64, seed uint64) ExperimentEnv {
	return exp.Env{Scale: scale, Seed: seed}
}
